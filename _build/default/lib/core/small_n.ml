module Graph = Gdpn_graph.Graph
module Builder = Gdpn_graph.Builder

let require_k k = if k < 1 then invalid_arg "Small_n: k must be >= 1"

(* G(1,k): processors 0..k, inputs k+1..2k+1, outputs 2k+2..3k+2;
   processor j owns input (k+1+j) and output (2k+2+j). *)
let g1 ~k =
  require_k k;
  let procs = k + 1 in
  let order = 3 * procs in
  let b = Graph.builder order in
  Builder.add_clique_on b (List.init procs Fun.id);
  for j = 0 to k do
    Graph.add_edge b j (procs + j);
    Graph.add_edge b j ((2 * procs) + j)
  done;
  let kind =
    Array.init order (fun v ->
        if v < procs then Label.Processor
        else if v < 2 * procs then Label.Input
        else Label.Output)
  in
  Instance.make ~graph:(Graph.freeze b) ~kind ~n:1 ~k
    ~name:(Printf.sprintf "G(1,%d)" k)
    ~strategy:Instance.Processor_clique

(* G(2,k): processors 0..k+1 with a = 0 (input only) and b = 1 (output
   only); inputs are k+2..2k+2 (one for a, one per processor 2..k+1),
   outputs are 2k+3..3k+3 (one for b, one per processor 2..k+1). *)
let g2 ~k =
  require_k k;
  let procs = k + 2 in
  let inputs_base = procs in
  let outputs_base = procs + k + 1 in
  let order = procs + 2 * (k + 1) in
  let b = Graph.builder order in
  Builder.add_clique_on b (List.init procs Fun.id);
  (* Input terminals: index 0 belongs to a = processor 0, the rest to
     processors 2..k+1. *)
  Graph.add_edge b 0 inputs_base;
  for j = 2 to k + 1 do
    Graph.add_edge b j (inputs_base + j - 1)
  done;
  (* Output terminals: index 0 belongs to b = processor 1. *)
  Graph.add_edge b 1 outputs_base;
  for j = 2 to k + 1 do
    Graph.add_edge b j (outputs_base + j - 1)
  done;
  let kind =
    Array.init order (fun v ->
        if v < procs then Label.Processor
        else if v < outputs_base then Label.Input
        else Label.Output)
  in
  Instance.make ~graph:(Graph.freeze b) ~kind ~n:2 ~k
    ~name:(Printf.sprintf "G(2,%d)" k)
    ~strategy:Instance.Processor_clique

let g2_node_a _inst = 0
let g2_node_b _inst = 1

(* G(3,k): processors p0..p(k+2) = ids 0..k+2 forming a clique minus the
   matching {(p_2q, p_2q+1)}; terminals attach by index per the paper's
   definition.  Input indices: {0..k-2} ∪ {k} ∪ {k+2};
   output indices: {0..k-1} ∪ {k+1}. *)
let g3_input_indices k =
  List.filter (fun j -> j <= k - 2 || j = k || j = k + 2)
    (List.init (k + 3) Fun.id)

let g3_output_indices k =
  List.filter (fun j -> j <= k - 1 || j = k + 1) (List.init (k + 3) Fun.id)

let g3 ~k =
  require_k k;
  let procs = k + 3 in
  let in_idx = g3_input_indices k in
  let out_idx = g3_output_indices k in
  assert (List.length in_idx = k + 1);
  assert (List.length out_idx = k + 1);
  let order = procs + 2 * (k + 1) in
  let b = Graph.builder order in
  (* Clique minus matching on the processors. *)
  let matched u v = u / 2 = v / 2 in
  for u = 0 to procs - 1 do
    for v = u + 1 to procs - 1 do
      if not (matched u v) then Graph.add_edge b u v
    done
  done;
  let kind = Array.make order Label.Processor in
  let next = ref procs in
  List.iter
    (fun j ->
      Graph.add_edge b j !next;
      kind.(!next) <- Label.Input;
      incr next)
    in_idx;
  List.iter
    (fun j ->
      Graph.add_edge b j !next;
      kind.(!next) <- Label.Output;
      incr next)
    out_idx;
  Instance.make ~graph:(Graph.freeze b) ~kind ~n:3 ~k
    ~name:(Printf.sprintf "G(3,%d)" k)
    ~strategy:Instance.Generic
