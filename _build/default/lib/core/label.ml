type t = Input | Output | Processor

let equal a b =
  match (a, b) with
  | Input, Input | Output, Output | Processor, Processor -> true
  | (Input | Output | Processor), _ -> false

let is_terminal = function Input | Output -> true | Processor -> false

let to_string = function
  | Input -> "input"
  | Output -> "output"
  | Processor -> "processor"

let pp ppf t = Format.pp_print_string ppf (to_string t)
