(** The merged-terminal model (§3).

    The paper's constructions assume terminals can fail.  For the
    alternative model — fault-free I/O devices — each solution is adapted by
    merging all input terminals into a single input node [i] and all output
    terminals into a single output node [o].  After merging, [i] has degree
    [k+1], which is the smallest degree any terminal can have in this model
    (fewer neighbours could be isolated by a fault set).

    In the merged model, fault sets range over processors only; the merged
    graph tolerates every processor fault set of size at most [k]
    (verified in the tests via {!Verify.exhaustive} with a processor-only
    fault universe). *)

val apply : Instance.t -> Instance.t
(** Merge a standard instance's terminals.  Processors are renumbered
    [0..n+k-1] in id order; the merged input node is [n+k], the merged
    output node [n+k+1]. *)

val input_node : Instance.t -> int
(** The merged input node of an [apply] result. *)

val output_node : Instance.t -> int
