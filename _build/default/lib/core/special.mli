(** The paper's "special solutions" (§3.3, Figures 10–13).

    The published figures give these graphs only as drawings; the paper
    notes they were "intuitively designed and exhaustively verified by human
    and/or computer checking".  The graphs below were found by the same
    process — [bin/search_special.ml] enumerates candidates with the degree
    profile forced by Lemmas 3.1/3.4/3.5 and verifies every fault set
    exhaustively — and are frozen here as explicit edge lists.  The test
    suite re-verifies each exhaustively.

    Degree facts (all degree-optimal):
    - [g62]: n=6, k=2, max processor degree 4 = k+2 (Theorem 3.15)
    - [g82]: n=8, k=2, max processor degree 4 = k+2 (Theorem 3.15)
    - [g43]: n=4, k=3, max processor degree 6 = k+3 (Lemma 3.5 applies)
    - [g73]: n=7, k=3, max processor degree 5 = k+2 (Theorem 3.16) *)

val g62 : unit -> Instance.t
(** Special solution for (n, k) = (6, 2) — Figure 10's role. *)

val g82 : unit -> Instance.t
(** Special solution for (n, k) = (8, 2) — Figure 11's role. *)

val g73 : unit -> Instance.t
(** Special solution for (n, k) = (7, 3) — Figure 12's role. *)

val g43 : unit -> Instance.t
(** Special solution for (n, k) = (4, 3) — Figure 13's role.  Note the
    uneven terminal attachment: one processor carries both an input and an
    output terminal (8 terminals over 7 processors). *)

val of_processor_graph :
  n:int ->
  k:int ->
  name:string ->
  strategy:Instance.strategy ->
  Gdpn_graph.Graph.t ->
  (int * Label.t) list ->
  Instance.t
(** [of_processor_graph ~n ~k ~name ~strategy procs attach] assembles a
    solution instance from a processor graph and an attachment list of
    [(processor, terminal kind)] pairs; terminals receive fresh ids after
    the processor ids.  Shared with the search tool and the uniqueness /
    impossibility experiments. *)
