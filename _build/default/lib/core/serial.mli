(** Textual serialization of solution-graph instances.

    A small line-oriented format so instances can be saved, exchanged, and
    re-verified, and so users can define their own candidate graphs and run
    the verifier against them:

    {v
    gdpn 1
    n 6
    k 2
    name G(6,2) [special]
    kinds PPPPPPPPIIIOOO
    edge 0 1
    edge 0 2
    ...
    v}

    [kinds] holds one character per node id ([P]rocessor, [I]nput,
    [O]utput).  Order of [edge] lines is irrelevant; blank lines and lines
    starting with [#] are ignored.  Deserialized instances carry the
    [Generic] reconfiguration strategy (the structural shortcuts are not
    representable in the format, and the generic solver is always
    sound). *)

val to_string : Instance.t -> string

val of_string : string -> (Instance.t, string) result
(** Parse; the error names the offending line. *)

val save : path:string -> Instance.t -> unit

val load : path:string -> (Instance.t, string) result
