(** The asymptotic construction of §3.4 for [k >= 4] and sufficiently
    large [n] (Theorem 3.17, Figures 14–15).

    The extended graph [G'(n,k)] partitions its [n + 3k + 6] nodes into six
    label-indexed sets [Ti', To', I', O', S'] (each [k+2] nodes, labels
    [0..k+1]) and [R'] ([n-2k-4] nodes, labels [k+2..n-k-3]).  [C' = S' ∪ R']
    carries a circulant graph (Elspas & Turner) on [m = n-k-2] nodes with
    offsets [1..p+1] where [p = floor(k/2)], plus "bisector" edges at offset
    [floor(m/2)] when [k] is odd; [I'] and [O'] are cliques; label-matched
    edges run Ti'-I', I'-S', S'-O', O'-To'.  The construction contains
    Hayes's fault-tolerant cycle as the circulant subgraph.

    The solution graph [G(n,k)] deletes the label-0 nodes of [Ti', I'], the
    label-(k+1) nodes of [To', O'], and the unit-offset edges inside [S].
    It has [n + 3k + 2] nodes, degree-1 terminals, and maximum degree [k+2]
    — except [k+3] when [n] is even and [k] odd, matching Lemma 3.5 — so it
    is node- and degree-optimal. *)

val min_n : k:int -> int
(** Smallest [n] this implementation accepts: [3k + 6], which guarantees
    [|R| >= k + 2] so that no circulant offset wraps into a collision.
    (The paper only states that [n] linear in [k] suffices.) *)

val build : n:int -> k:int -> Instance.t
(** [G(n,k)].  Raises [Invalid_argument] when [k < 4] or [n < min_n ~k]. *)

val extended : n:int -> k:int -> Gdpn_graph.Graph.t * Label.t array
(** The extended graph [G'(n,k)] with its node labelling — exposed for the
    structural tests (regular degrees, supergraph relationship). *)

(** Node-set accessors for a [build] result (used by tests and the DOT
    renderings of Figures 14–15).  Node ids: circulant nodes [C = S ∪ R]
    occupy ids [0..m-1] in label order; then [I], [O], [Ti], [To]. *)

val s_nodes : n:int -> k:int -> int list
val r_nodes : n:int -> k:int -> int list
val i_nodes : n:int -> k:int -> int list
val o_nodes : n:int -> k:int -> int list
