type entry = {
  id : string;
  description : string;
  build : unit -> Instance.t;
}

let all =
  [
    { id = "fig2"; description = "G(3,3): the n=3 construction, n+k even";
      build = (fun () -> Small_n.g3 ~k:3) };
    { id = "fig3"; description = "G(3,2): the n=3 construction, n+k odd";
      build = (fun () -> Small_n.g3 ~k:2) };
    { id = "fig4a"; description = "G(1,1)";
      build = (fun () -> Family.build ~n:1 ~k:1) };
    { id = "fig4b"; description = "G(2,1)";
      build = (fun () -> Family.build ~n:2 ~k:1) };
    { id = "fig4c"; description = "G(3,1) = ext(G(1,1))";
      build = (fun () -> Family.build ~n:3 ~k:1) };
    { id = "fig10"; description = "special solution G(6,2)";
      build = (fun () -> Special.g62 ()) };
    { id = "fig11"; description = "special solution G(8,2)";
      build = (fun () -> Special.g82 ()) };
    { id = "fig12"; description = "special solution G(7,3)";
      build = (fun () -> Special.g73 ()) };
    { id = "fig13"; description = "special solution G(4,3)";
      build = (fun () -> Special.g43 ()) };
    { id = "fig14"; description = "G(22,4), the circulant family";
      build = (fun () -> Circulant_family.build ~n:22 ~k:4) };
    { id = "fig15"; description = "G(26,5), with bisector edges";
      build = (fun () -> Circulant_family.build ~n:26 ~k:5) };
  ]

let find id = List.find_opt (fun e -> e.id = id) all
let ids = List.map (fun e -> e.id) all
