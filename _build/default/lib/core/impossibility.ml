module Graph = Gdpn_graph.Graph
module Combinat = Gdpn_graph.Combinat

type census = {
  graphs_examined : int;
  assignments_examined : int;
  solutions_found : int;
}

let is_k_gd_quick inst =
  let order = Instance.order inst in
  let k = inst.Instance.k in
  let ok = ref true in
  (try
     for size = k downto 0 do
       Combinat.iter_choose order size (fun buf ->
           match Verify.check_fault_set inst (Array.to_list buf) with
           | Ok () -> ()
           | Error _ ->
             ok := false;
             raise Exit)
     done
   with Exit -> ());
  !ok

(* Enumerate every labeled simple graph on [nodes] vertices with the given
   degree sequence, by deciding each potential edge in lexicographic order
   with residual-degree pruning. *)
let enumerate_degree_sequence ~nodes ~degrees yield =
  let pairs =
    let acc = ref [] in
    for u = nodes - 1 downto 0 do
      for v = nodes - 1 downto u + 1 do
        acc := (u, v) :: !acc
      done
    done;
    Array.of_list !acc
  in
  let npairs = Array.length pairs in
  (* remaining.(i).(v): number of pairs with index >= i involving v. *)
  let remaining = Array.make_matrix (npairs + 1) nodes 0 in
  for i = npairs - 1 downto 0 do
    Array.blit remaining.(i + 1) 0 remaining.(i) 0 nodes;
    let u, v = pairs.(i) in
    remaining.(i).(u) <- remaining.(i).(u) + 1;
    remaining.(i).(v) <- remaining.(i).(v) + 1
  done;
  let residual = Array.copy degrees in
  let chosen = ref [] in
  let rec go i =
    if i = npairs then begin
      if Array.for_all (fun r -> r = 0) residual then yield (List.rev !chosen)
    end
    else begin
      let u, v = pairs.(i) in
      let feasible () =
        Array.for_all
          (fun w -> residual.(w) <= remaining.(i + 1).(w))
          [| u; v |]
        (* Global sanity: no node can still need more than what's left. *)
        &&
        let ok = ref true in
        for w = 0 to nodes - 1 do
          if residual.(w) > remaining.(i + 1).(w) then ok := false
        done;
        !ok
      in
      (* Option 1: include the edge. *)
      if residual.(u) > 0 && residual.(v) > 0 then begin
        residual.(u) <- residual.(u) - 1;
        residual.(v) <- residual.(v) - 1;
        chosen := (u, v) :: !chosen;
        if feasible () then go (i + 1);
        chosen := List.tl !chosen;
        residual.(u) <- residual.(u) + 1;
        residual.(v) <- residual.(v) + 1
      end;
      (* Option 2: exclude it. *)
      if feasible () then go (i + 1)
    end
  in
  go 0

let standard_census ~n ~k =
  if n < k + 2 then
    invalid_arg
      "Impossibility.standard_census: n < k+2 (see lemma_3_11_counting)";
  let procs = n + k in
  let terminals = 2 * (k + 1) in
  let free = procs - terminals in
  assert (free >= 0);
  (* Free processors (full processor degree k+2) pinned to ids 0..free-1;
     attached processors (one terminal, k+1 processor neighbours) follow. *)
  let degrees =
    Array.init procs (fun v -> if v < free then k + 2 else k + 1)
  in
  let attached = List.init terminals (fun i -> free + i) in
  let graphs = ref 0 in
  let assignments = ref 0 in
  let solutions = ref 0 in
  enumerate_degree_sequence ~nodes:procs ~degrees (fun edges ->
      incr graphs;
      let proc_graph = Graph.of_edges procs edges in
      Combinat.iter_choose terminals (k + 1) (fun in_buf ->
          incr assignments;
          let input_procs =
            List.map (fun i -> free + i) (Array.to_list in_buf)
          in
          let attach =
            List.map
              (fun p ->
                ( p,
                  if List.mem p input_procs then Label.Input else Label.Output
                ))
              attached
          in
          let inst =
            Special.of_processor_graph ~n ~k
              ~name:(Printf.sprintf "census(%d,%d) candidate" n k)
              ~strategy:Instance.Generic proc_graph attach
          in
          if is_k_gd_quick inst then incr solutions));
  {
    graphs_examined = !graphs;
    assignments_examined = !assignments;
    solutions_found = !solutions;
  }

let lemma_3_14 () = standard_census ~n:5 ~k:2

let lemma_3_11_counting ~k = 2 * (k + 1) > k + 3

(* Rebuild an instance with one processor-processor edge removed. *)
let without_edge inst (u, v) =
  let g = inst.Instance.graph in
  let b = Graph.builder (Graph.order g) in
  List.iter
    (fun (a, c) -> if not ((a, c) = (u, v) || (a, c) = (v, u)) then Graph.add_edge b a c)
    (Graph.edges g);
  Instance.make ~graph:(Graph.freeze b)
    ~kind:(Array.init (Instance.order inst) (Instance.kind_of inst))
    ~n:inst.Instance.n ~k:inst.Instance.k
    ~name:(inst.Instance.name ^ " minus edge")
    ~strategy:Instance.Generic

let processor_edges inst =
  List.filter
    (fun (u, v) ->
      Label.equal (Instance.kind_of inst u) Label.Processor
      && Label.equal (Instance.kind_of inst v) Label.Processor)
    (Graph.edges inst.Instance.graph)

let edge_necessity inst =
  List.for_all
    (fun e -> not (is_k_gd_quick (without_edge inst e)))
    (processor_edges inst)

let g1_clique_edge_necessity ~k = edge_necessity (Small_n.g1 ~k)
let g2_clique_edge_necessity ~k = edge_necessity (Small_n.g2 ~k)

(* A G(2,k)-like graph with I = O: processors form a clique; one processor u
   has no terminal, one processor w has two (an input and an output), the
   rest have one of each.  The Lemma 3.9 proof (Case 1) shows this cannot be
   a solution graph. *)
let g2_io_overlap_impossible ~k =
  let procs = k + 2 in
  let proc_graph = Gdpn_graph.Builder.clique procs in
  (* u = processor 0 gets nothing; w = processor 1 gets two terminals. *)
  let attach =
    (1, Label.Input) :: (1, Label.Output)
    :: List.concat_map
         (fun p -> [ (p, Label.Input); (p, Label.Output) ])
         (List.init k (fun i -> i + 2))
  in
  let inst =
    Special.of_processor_graph ~n:2 ~k ~name:"G(2,k) with I = O"
      ~strategy:Instance.Generic proc_graph attach
  in
  not (is_k_gd_quick inst)
