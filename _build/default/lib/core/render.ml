module Graph = Gdpn_graph.Graph

let kind_letter inst v =
  match Instance.kind_of inst v with
  | Label.Input -> "in"
  | Label.Output -> "out"
  | Label.Processor -> "p"

let summary inst = Format.asprintf "%a" Instance.pp inst

let adjacency inst =
  let buf = Buffer.create 256 in
  for v = 0 to Instance.order inst - 1 do
    Buffer.add_string buf
      (Printf.sprintf "%4d %-4s: %s\n" v (kind_letter inst v)
         (String.concat " "
            (List.map string_of_int
               (Array.to_list (Graph.neighbours inst.Instance.graph v)))))
  done;
  Buffer.contents buf

let embedding inst pipeline =
  let p = Pipeline.normalise inst pipeline in
  String.concat " -> "
    (List.map
       (fun v ->
         match Instance.kind_of inst v with
         | Label.Input -> Printf.sprintf "in(%d)" v
         | Label.Output -> Printf.sprintf "out(%d)" v
         | Label.Processor -> Printf.sprintf "p%d" v)
       p.Pipeline.nodes)

let ring ?(faults = []) ?pipeline inst =
  match inst.Instance.strategy with
  | Instance.Circulant_layout { m } ->
    let k = inst.Instance.k in
    let visit_order = Hashtbl.create 64 in
    (match pipeline with
    | Some p ->
      List.iteri
        (fun i v -> Hashtbl.replace visit_order v i)
        (Pipeline.normalise inst p).Pipeline.nodes
    | None -> ());
    let mark v =
      if List.mem v faults then "X"
      else
        match Hashtbl.find_opt visit_order v with
        | Some i -> string_of_int i
        | None -> "."
    in
    let buf = Buffer.create 1024 in
    Buffer.add_string buf
      "lbl role ring   I      O      Ti     To    (X = fault, numbers = pipeline visit order)\n";
    for lbl = 0 to m - 1 do
      let cell id = Printf.sprintf "%3d:%-3s" id (mark id) in
      let blank = "       " in
      let i_cell =
        if lbl >= 1 && lbl <= k + 1 then cell (m + lbl - 1) else blank
      in
      let o_cell = if lbl <= k then cell (m + k + 1 + lbl) else blank in
      let ti_cell =
        if lbl >= 1 && lbl <= k + 1 then cell (m + (2 * k) + 2 + lbl - 1)
        else blank
      in
      let to_cell =
        if lbl <= k then cell (m + (3 * k) + 3 + lbl) else blank
      in
      Buffer.add_string buf
        (Printf.sprintf "%3d %-4s %s %s %s %s %s\n" lbl
           (if lbl <= k + 1 then "S" else "R")
           (cell lbl) i_cell o_cell ti_cell to_cell)
    done;
    Buffer.contents buf
  | Instance.Generic | Instance.Processor_clique | Instance.Extension _ ->
    invalid_arg "Render.ring: not a circulant-family instance"
