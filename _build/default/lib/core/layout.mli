(** Physical ring layouts and wirelength metrics.

    The reconfigurable-array literature the paper builds on (Rosenberg's
    Diogenes approach, Hayes' arrays) cares about implementation cost:
    how long do the wires get when the graph is laid out?  This module
    assigns each node a coordinate on a unit ring and measures edge and
    pipeline wirelengths, so constructions can be compared as layouts, not
    just as abstract graphs.

    Two layouts are provided: the generic one places nodes evenly in id
    order; the circulant-natural one places the §3.4 family's ring nodes by
    circulant label and co-locates each I/O/terminal column with its S
    node, which is how that construction would be physically built. *)

type t
(** A placement: one ring coordinate in [0, 1) per node. *)

val linear : Instance.t -> t
(** Nodes evenly spaced in id order. *)

val circulant_natural : Instance.t -> t
(** Natural layout for a [Circulant_layout] instance: ring nodes by label,
    column nodes at their label's position.  Raises [Invalid_argument] for
    other strategies. *)

val position : t -> int -> float

val edge_length : t -> int -> int -> float
(** Ring distance between two nodes' positions (at most 0.5). *)

val max_edge_length : t -> Gdpn_graph.Graph.t -> float
(** Longest wire the layout needs. *)

val total_edge_length : t -> Gdpn_graph.Graph.t -> float

val pipeline_wirelength : t -> Pipeline.t -> float
(** Sum of hop lengths along an embedded pipeline — the signal's physical
    travel per item. *)
