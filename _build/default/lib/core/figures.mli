(** The paper's figures as a reproducible registry.

    Figures 2–15 of the paper are graph constructions; each entry builds
    the corresponding instance so it can be rendered (DOT / ASCII),
    verified, or embedded programmatically.  Figure 1 (a bare pipeline) is
    representable as the fault-free embedding of any instance and has no
    entry of its own. *)

type entry = {
  id : string;  (** e.g. ["fig14"] *)
  description : string;
  build : unit -> Instance.t;
}

val all : entry list
(** Every regenerable figure, in paper order. *)

val find : string -> entry option

val ids : string list
