module Graph = Gdpn_graph.Graph

let apply inst =
  if not (Instance.is_standard inst) then
    invalid_arg "Merge.apply: instance must be standard";
  let procs = Instance.processors inst in
  let count = List.length procs in
  let remap = Hashtbl.create count in
  List.iteri (fun idx p -> Hashtbl.replace remap p idx) procs;
  let input_node = count and output_node = count + 1 in
  let b = Graph.builder (count + 2) in
  List.iter
    (fun (u, v) ->
      match (Hashtbl.find_opt remap u, Hashtbl.find_opt remap v) with
      | Some u', Some v' -> Graph.add_edge b u' v'
      | _ -> ())
    (Graph.edges inst.Instance.graph);
  let attach terminal node =
    let p = Instance.attached_processor inst terminal in
    Graph.add_edge_if_absent b (Hashtbl.find remap p) node
  in
  List.iter (fun t -> attach t input_node) (Instance.inputs inst);
  List.iter (fun t -> attach t output_node) (Instance.outputs inst);
  let kind =
    Array.init (count + 2) (fun v ->
        if v = input_node then Label.Input
        else if v = output_node then Label.Output
        else Label.Processor)
  in
  Instance.make ~graph:(Graph.freeze b) ~kind ~n:inst.Instance.n
    ~k:inst.Instance.k
    ~name:(Printf.sprintf "merged[%s]" inst.Instance.name)
    ~strategy:Instance.Generic

let input_node inst = Instance.order inst - 2
let output_node inst = Instance.order inst - 1
