exception Unsupported of string

let ext base l = Extend.iterate base l

(* Theorem 3.13. *)
let build_k1 ~n =
  if n = 1 then Small_n.g1 ~k:1
  else if n = 2 then Small_n.g2 ~k:1
  else if n mod 2 = 1 then ext (Small_n.g1 ~k:1) ((n - 1) / 2)
  else ext (Small_n.g2 ~k:1) ((n - 2) / 2)

(* Theorem 3.15. *)
let build_k2 ~n =
  match n with
  | 1 -> Small_n.g1 ~k:2
  | 2 -> Small_n.g2 ~k:2
  | 3 -> Small_n.g3 ~k:2
  | 4 -> ext (Small_n.g1 ~k:2) 1
  | 5 -> ext (Small_n.g2 ~k:2) 1
  | 6 -> Special.g62 ()
  | 7 -> ext (Small_n.g1 ~k:2) 2
  | 8 -> Special.g82 ()
  | n -> (
    match n mod 3 with
    | 0 -> ext (Special.g62 ()) ((n - 6) / 3)
    | 1 -> ext (Small_n.g1 ~k:2) ((n - 1) / 3)
    | _ -> ext (Special.g82 ()) ((n - 8) / 3))

(* Theorem 3.16. *)
let build_k3 ~n =
  match n with
  | 1 -> Small_n.g1 ~k:3
  | 2 -> Small_n.g2 ~k:3
  | 3 -> Small_n.g3 ~k:3
  | 4 -> Special.g43 ()
  | 5 -> ext (Small_n.g1 ~k:3) 1
  | 6 -> ext (Small_n.g2 ~k:3) 1
  | 7 -> Special.g73 ()
  | n -> (
    match n mod 4 with
    | 0 -> ext (Special.g43 ()) ((n - 4) / 4)
    | 1 -> ext (Small_n.g1 ~k:3) ((n - 1) / 4)
    | 2 -> ext (Small_n.g2 ~k:3) ((n - 2) / 4)
    | _ -> ext (Special.g73 ()) ((n - 7) / 4))

(* k >= 4: §3.4 for large n, Corollary 3.8-style extensions in the gap. *)
let build_k_large ~n ~k =
  match n with
  | 1 -> Small_n.g1 ~k
  | 2 -> Small_n.g2 ~k
  | 3 -> Small_n.g3 ~k
  | n when n >= Circulant_family.min_n ~k -> Circulant_family.build ~n ~k
  | n -> (
    let step = k + 1 in
    match n mod step with
    | 1 -> ext (Small_n.g1 ~k) (n / step)
    | 2 -> ext (Small_n.g2 ~k) (n / step)
    | 3 -> ext (Small_n.g3 ~k) (n / step)
    | r ->
      raise
        (Unsupported
           (Printf.sprintf
              "no construction for n=%d, k=%d (gap below n=%d, residue %d \
               mod %d not in {1,2,3})"
              n k (Circulant_family.min_n ~k) r step)))

let build ~n ~k =
  if n < 1 then invalid_arg "Family.build: n must be >= 1";
  if k < 1 then invalid_arg "Family.build: k must be >= 1";
  match k with
  | 1 -> build_k1 ~n
  | 2 -> build_k2 ~n
  | 3 -> build_k3 ~n
  | _ -> build_k_large ~n ~k

let supported ~n ~k =
  match build ~n ~k with
  | (_ : Instance.t) -> true
  | exception Unsupported _ -> false

let claimed_degree ~n ~k =
  if n < 1 || k < 1 then None
  else if k <= 3 || n <= 3 || n >= Circulant_family.min_n ~k then
    Some (Bounds.degree_lower_bound ~n ~k)
  else None
