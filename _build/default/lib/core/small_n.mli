(** The paper's constructions for small [n] and arbitrary [k] (§3.2).

    All three are standard (node-optimal, degree-1 terminals):

    - [g1 ~k] — Lemma 3.7: the unique standard solution for [n = 1].
      The [k+1] processors form a clique; every processor is adjacent to one
      input terminal and one output terminal ([I = O]).  Maximum processor
      degree [k+2] (degree-optimal, Corollary 3.3).

    - [g2 ~k] — Lemma 3.9: the unique standard solution for [n = 2].
      The [k+2] processors form a clique; processor [a] has only an input
      terminal, [b] only an output terminal, all others have one of each.
      Maximum processor degree [k+3] (degree-optimal, Corollary 3.10).

    - [g3 ~k] — §3.2 definition, Figures 2–3: [n = 3].  Processors
      [p0..p(k+2)] form a clique minus the matching [(p0,p1), (p2,p3), ...];
      input terminals sit at indices [{0..k-2} ∪ {k} ∪ {k+2}], output
      terminals at [{0..k-1} ∪ {k+1}].  Maximum processor degree [k+3] for
      [k >= 2] (degree-optimal, Lemma 3.11) and [k+2] for [k = 1]
      (Corollary 3.3).  k-graceful degradability is Lemma 3.12. *)

val g1 : k:int -> Instance.t

val g2 : k:int -> Instance.t

val g3 : k:int -> Instance.t

val g2_node_a : Instance.t -> int
(** The distinguished input-only processor [a] of a [g2] instance. *)

val g2_node_b : Instance.t -> int
(** The distinguished output-only processor [b] of a [g2] instance. *)
