module Graph = Gdpn_graph.Graph

let kind_char = function
  | Label.Processor -> 'P'
  | Label.Input -> 'I'
  | Label.Output -> 'O'

let kind_of_char = function
  | 'P' -> Some Label.Processor
  | 'I' -> Some Label.Input
  | 'O' -> Some Label.Output
  | _ -> None

let to_string inst =
  let buf = Buffer.create 256 in
  let add fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  add "gdpn 1";
  add "n %d" inst.Instance.n;
  add "k %d" inst.Instance.k;
  add "name %s" inst.Instance.name;
  add "kinds %s"
    (String.init (Instance.order inst) (fun v ->
         kind_char (Instance.kind_of inst v)));
  List.iter
    (fun (u, v) -> add "edge %d %d" u v)
    (Graph.edges inst.Instance.graph);
  Buffer.contents buf

let of_string text =
  let err lineno fmt =
    Printf.ksprintf (fun s -> Error (Printf.sprintf "line %d: %s" lineno s)) fmt
  in
  let lines = String.split_on_char '\n' text in
  let n = ref None in
  let k = ref None in
  let name = ref "unnamed" in
  let kinds = ref None in
  let edges = ref [] in
  let header_seen = ref false in
  let exception Parse_error of string in
  try
    List.iteri
      (fun idx line ->
        let lineno = idx + 1 in
        let line = String.trim line in
        let fail fmt =
          Printf.ksprintf
            (fun s ->
              raise (Parse_error (Printf.sprintf "line %d: %s" lineno s)))
            fmt
        in
        if line = "" || line.[0] = '#' then ()
        else
          match String.index_opt line ' ' with
          | None -> fail "malformed line %S" line
          | Some i -> (
            let key = String.sub line 0 i in
            let rest = String.sub line (i + 1) (String.length line - i - 1) in
            match key with
            | "gdpn" ->
              if String.trim rest <> "1" then fail "unsupported version %s" rest;
              header_seen := true
            | "n" -> (
              match int_of_string_opt (String.trim rest) with
              | Some v -> n := Some v
              | None -> fail "bad n %S" rest)
            | "k" -> (
              match int_of_string_opt (String.trim rest) with
              | Some v -> k := Some v
              | None -> fail "bad k %S" rest)
            | "name" -> name := rest
            | "kinds" -> kinds := Some (String.trim rest)
            | "edge" -> (
              match
                String.split_on_char ' ' (String.trim rest)
                |> List.filter (fun s -> s <> "")
                |> List.map int_of_string_opt
              with
              | [ Some u; Some v ] -> edges := (u, v) :: !edges
              | _ -> fail "bad edge %S" rest)
            | other -> fail "unknown key %S" other))
      lines;
    if not !header_seen then err 1 "missing 'gdpn 1' header"
    else
      match (!n, !k, !kinds) with
      | None, _, _ -> err 1 "missing 'n'"
      | _, None, _ -> err 1 "missing 'k'"
      | _, _, None -> err 1 "missing 'kinds'"
      | Some n, Some k, Some kinds -> (
        let order = String.length kinds in
        let kind = Array.make (max 1 order) Label.Processor in
        let bad = ref None in
        String.iteri
          (fun v c ->
            match kind_of_char c with
            | Some km -> kind.(v) <- km
            | None -> if !bad = None then bad := Some c)
          kinds;
        match !bad with
        | Some c -> err 1 "unknown kind character %C" c
        | None -> (
          match
            let b = Graph.builder order in
            List.iter (fun (u, v) -> Graph.add_edge b u v) (List.rev !edges);
            Graph.freeze b
          with
          | graph -> (
            match
              Instance.make ~graph ~kind ~n ~k ~name:!name
                ~strategy:Instance.Generic
            with
            | inst -> Ok inst
            | exception Invalid_argument msg -> err 1 "%s" msg)
          | exception Invalid_argument msg -> err 1 "%s" msg))
  with Parse_error msg -> Error msg

let save ~path inst =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string inst))

let load ~path =
  match open_in path with
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let len = in_channel_length ic in
        of_string (really_input_string ic len))
  | exception Sys_error msg -> Error msg
