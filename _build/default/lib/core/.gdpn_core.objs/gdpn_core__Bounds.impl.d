lib/core/bounds.ml: Gdpn_graph Instance Label List
