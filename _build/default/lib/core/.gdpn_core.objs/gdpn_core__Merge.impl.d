lib/core/merge.ml: Array Gdpn_graph Hashtbl Instance Label List Printf
