lib/core/label.ml: Format
