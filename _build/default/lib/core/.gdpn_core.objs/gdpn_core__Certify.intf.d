lib/core/certify.mli: Instance
