lib/core/special.ml: Array Gdpn_graph Instance Label List
