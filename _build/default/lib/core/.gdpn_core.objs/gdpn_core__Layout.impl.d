lib/core/layout.ml: Array Float Gdpn_graph Instance List Pipeline
