lib/core/family.mli: Instance
