lib/core/circulant_family.ml: Array Fun Gdpn_graph Instance Label List Printf
