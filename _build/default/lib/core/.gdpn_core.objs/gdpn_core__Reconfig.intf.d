lib/core/reconfig.mli: Format Gdpn_graph Instance Pipeline
