lib/core/serial.ml: Array Buffer Fun Gdpn_graph Instance Label List Printf String
