lib/core/merge.mli: Instance
