lib/core/instance.ml: Array Format Gdpn_graph Label List
