lib/core/attack.mli: Instance Random
