lib/core/render.mli: Instance Pipeline
