lib/core/pipeline.mli: Format Gdpn_graph Instance
