lib/core/reconfig.ml: Array Format Fun Gdpn_graph Instance Label List Option Pipeline
