lib/core/extend.mli: Instance
