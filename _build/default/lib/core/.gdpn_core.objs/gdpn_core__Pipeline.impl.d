lib/core/pipeline.ml: Format Gdpn_graph Instance Label List Result
