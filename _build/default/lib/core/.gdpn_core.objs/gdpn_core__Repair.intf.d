lib/core/repair.mli: Gdpn_graph Instance Pipeline
