lib/core/link_faults.mli: Format Instance Pipeline
