lib/core/link_faults.ml: Array Format Gdpn_graph Instance List Pipeline Reconfig
