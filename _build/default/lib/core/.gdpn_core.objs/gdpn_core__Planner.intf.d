lib/core/planner.mli: Format Instance Random
