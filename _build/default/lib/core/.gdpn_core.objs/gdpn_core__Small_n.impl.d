lib/core/small_n.ml: Array Fun Gdpn_graph Instance Label List Printf
