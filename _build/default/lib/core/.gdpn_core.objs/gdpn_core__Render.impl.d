lib/core/render.ml: Array Buffer Format Gdpn_graph Hashtbl Instance Label List Pipeline Printf String
