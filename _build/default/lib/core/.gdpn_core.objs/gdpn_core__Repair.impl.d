lib/core/repair.ml: Gdpn_graph Instance Label List Pipeline Reconfig
