lib/core/attack.ml: Array Fun Gdpn_graph Instance List Reconfig
