lib/core/circulant_family.mli: Gdpn_graph Instance Label
