lib/core/special.mli: Gdpn_graph Instance Label
