lib/core/verify.mli: Format Instance Random
