lib/core/impossibility.ml: Array Gdpn_graph Instance Label List Printf Small_n Special Verify
