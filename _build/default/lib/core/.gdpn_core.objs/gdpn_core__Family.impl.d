lib/core/family.ml: Bounds Circulant_family Extend Instance Printf Small_n Special
