lib/core/figures.mli: Instance
