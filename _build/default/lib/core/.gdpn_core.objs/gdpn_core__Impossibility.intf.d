lib/core/impossibility.mli: Instance
