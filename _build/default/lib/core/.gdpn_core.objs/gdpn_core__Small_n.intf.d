lib/core/small_n.mli: Instance
