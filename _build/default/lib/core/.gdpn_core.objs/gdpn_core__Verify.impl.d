lib/core/verify.ml: Array Atomic Domain Format Gdpn_graph Instance List Option Pipeline Reconfig String
