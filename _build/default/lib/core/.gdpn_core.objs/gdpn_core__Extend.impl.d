lib/core/extend.ml: Array Gdpn_graph Instance Label List Printf
