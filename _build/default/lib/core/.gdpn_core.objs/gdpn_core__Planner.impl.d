lib/core/planner.ml: Family Float Format Gdpn_graph Instance Printf Random Reconfig
