lib/core/serial.mli: Instance
