lib/core/certify.ml: Array Buffer Digest Gdpn_graph Instance List Pipeline Printf Reconfig Serial String
