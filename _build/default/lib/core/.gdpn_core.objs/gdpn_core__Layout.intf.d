lib/core/layout.mli: Gdpn_graph Instance Pipeline
