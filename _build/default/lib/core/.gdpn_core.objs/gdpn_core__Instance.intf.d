lib/core/instance.mli: Format Gdpn_graph Label
