lib/core/figures.ml: Circulant_family Family Instance List Small_n Special
