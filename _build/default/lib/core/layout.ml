module Graph = Gdpn_graph.Graph

type t = { positions : float array }

let of_positions positions = { positions }

let linear inst =
  let n = Instance.order inst in
  of_positions (Array.init n (fun v -> float_of_int v /. float_of_int n))

let circulant_natural inst =
  match inst.Instance.strategy with
  | Instance.Circulant_layout { m } ->
    let k = inst.Instance.k in
    let order = Instance.order inst in
    let at_label l = float_of_int (((l mod m) + m) mod m) /. float_of_int m in
    let positions =
      Array.init order (fun v ->
          if v < m then at_label v (* C node: its own label *)
          else if v < m + k + 1 then at_label (v - m + 1) (* I, labels 1.. *)
          else if v < m + (2 * k) + 2 then at_label (v - (m + k + 1))
            (* O, labels 0.. *)
          else if v < m + (3 * k) + 3 then at_label (v - (m + (2 * k) + 2) + 1)
            (* Ti *)
          else at_label (v - (m + (3 * k) + 3)) (* To *))
    in
    of_positions positions
  | Instance.Generic | Instance.Processor_clique | Instance.Extension _ ->
    invalid_arg "Layout.circulant_natural: not a circulant-family instance"

let position t v = t.positions.(v)

let edge_length t u v =
  let d = Float.abs (t.positions.(u) -. t.positions.(v)) in
  Float.min d (1.0 -. d)

let max_edge_length t g =
  List.fold_left
    (fun acc (u, v) -> Float.max acc (edge_length t u v))
    0.0 (Graph.edges g)

let total_edge_length t g =
  List.fold_left
    (fun acc (u, v) -> acc +. edge_length t u v)
    0.0 (Graph.edges g)

let pipeline_wirelength t p =
  let rec hops = function
    | a :: (b :: _ as rest) -> edge_length t a b +. hops rest
    | [ _ ] | [] -> 0.0
  in
  hops p.Pipeline.nodes
