type t =
  | Fir of float array
  | Iir of { b : float array; a : float array }
  | Subsample of int
  | Rescale of { num : int; den : int }
  | Gain of float
  | Quantize of int
  | Rle_compress
  | Projection_sum of int
  | Median of int
  | Dct of int

let apply_fir coeffs frame =
  let taps = Array.length coeffs in
  let len = Array.length frame in
  Array.init len (fun i ->
      let acc = ref 0.0 in
      for j = 0 to taps - 1 do
        if i - j >= 0 then acc := !acc +. (coeffs.(j) *. frame.(i - j))
      done;
      !acc)

let apply_iir ~b ~a frame =
  let len = Array.length frame in
  let out = Array.make len 0.0 in
  for i = 0 to len - 1 do
    let acc = ref 0.0 in
    for j = 0 to Array.length b - 1 do
      if i - j >= 0 then acc := !acc +. (b.(j) *. frame.(i - j))
    done;
    for j = 0 to Array.length a - 1 do
      if i - j - 1 >= 0 then acc := !acc -. (a.(j) *. out.(i - j - 1))
    done;
    out.(i) <- !acc
  done;
  out

let apply_subsample m frame =
  if m < 1 then invalid_arg "Stage.apply: subsample factor must be >= 1";
  let len = (Array.length frame + m - 1) / m in
  Array.init len (fun i -> frame.(i * m))

let apply_rescale ~num ~den frame =
  if num < 1 || den < 1 then invalid_arg "Stage.apply: rescale ratio";
  let len = Array.length frame in
  if len = 0 then [||]
  else begin
    let out_len = max 1 (len * num / den) in
    Array.init out_len (fun i ->
        (* Source position with linear interpolation. *)
        let pos = float_of_int i *. float_of_int den /. float_of_int num in
        let lo = int_of_float pos in
        let hi = min (len - 1) (lo + 1) in
        let frac = pos -. float_of_int lo in
        if lo >= len then frame.(len - 1)
        else ((1.0 -. frac) *. frame.(lo)) +. (frac *. frame.(hi)))
  end

let apply_quantize levels frame =
  if levels < 2 then invalid_arg "Stage.apply: quantizer needs >= 2 levels";
  let q = float_of_int (levels - 1) in
  Array.map (fun x -> Float.round (x *. q) /. q) frame

let apply_rle frame =
  let out = ref [] in
  let len = Array.length frame in
  let i = ref 0 in
  while !i < len do
    let v = frame.(!i) in
    let run = ref 1 in
    while !i + !run < len && frame.(!i + !run) = v do
      incr run
    done;
    out := float_of_int !run :: v :: !out;
    i := !i + !run
  done;
  Array.of_list (List.rev !out)

let apply_projection width frame =
  if width < 1 then invalid_arg "Stage.apply: projection width";
  let len = Array.length frame in
  if len < width then [| Array.fold_left ( +. ) 0.0 frame |]
  else
    Array.init
      (len - width + 1)
      (fun i ->
        let acc = ref 0.0 in
        for j = 0 to width - 1 do
          acc := !acc +. frame.(i + j)
        done;
        !acc)

let apply_median width frame =
  if width < 1 || width mod 2 = 0 then
    invalid_arg "Stage.apply: median width must be odd and positive";
  let len = Array.length frame in
  let half = width / 2 in
  Array.init len (fun i ->
      let lo = max 0 (i - half) in
      let hi = min (len - 1) (i + half) in
      let window = Array.sub frame lo (hi - lo + 1) in
      Array.sort compare window;
      window.(Array.length window / 2))

let apply_dct block frame =
  if block < 1 then invalid_arg "Stage.apply: dct block size";
  let len = Array.length frame in
  let out = Array.make len 0.0 in
  let blocks = (len + block - 1) / block in
  for b = 0 to blocks - 1 do
    let base = b * block in
    let size = min block (len - base) in
    for u = 0 to size - 1 do
      let acc = ref 0.0 in
      for x = 0 to size - 1 do
        acc :=
          !acc
          +. frame.(base + x)
             *. cos
                  (Float.pi /. float_of_int size
                  *. (float_of_int x +. 0.5)
                  *. float_of_int u)
      done;
      out.(base + u) <- !acc
    done
  done;
  out

let apply t frame =
  match t with
  | Fir coeffs -> apply_fir coeffs frame
  | Iir { b; a } -> apply_iir ~b ~a frame
  | Subsample m -> apply_subsample m frame
  | Rescale { num; den } -> apply_rescale ~num ~den frame
  | Gain g -> Array.map (fun x -> g *. x) frame
  | Quantize levels -> apply_quantize levels frame
  | Rle_compress -> apply_rle frame
  | Projection_sum width -> apply_projection width frame
  | Median width -> apply_median width frame
  | Dct block -> apply_dct block frame

let output_length t len =
  match t with
  | Subsample m -> (len + m - 1) / max 1 m
  | Rescale { num; den } -> max 1 (len * num / max 1 den)
  | Projection_sum w -> if len < w then 1 else len - w + 1
  | Rle_compress (* worst case: no runs *) | Fir _ | Iir _ | Gain _
  | Quantize _ | Median _ | Dct _ ->
    len

let cost t ~frame =
  match t with
  | Fir coeffs -> frame * Array.length coeffs
  | Iir { b; a } -> frame * (Array.length b + Array.length a)
  | Subsample m -> frame / max 1 m
  | Rescale { num; den } -> 2 * frame * num / max 1 den
  | Gain _ -> frame
  | Quantize _ -> 2 * frame
  | Rle_compress -> 2 * frame
  | Projection_sum width -> frame * width
  | Median width -> frame * width (* window sort, small constant folded in *)
  | Dct block -> frame * block

let state_size = function
  | Fir coeffs -> max 0 (Array.length coeffs - 1)
  | Iir { b; a } -> max 0 (Array.length b - 1) + Array.length a
  | Median width -> max 0 (width - 1)
  | Subsample _ | Rescale _ | Gain _ | Quantize _ | Rle_compress
  | Projection_sum _ | Dct _ ->
    0

let name = function
  | Fir c -> Printf.sprintf "fir/%d" (Array.length c)
  | Iir { b; a } -> Printf.sprintf "iir/%d,%d" (Array.length b) (Array.length a)
  | Subsample m -> Printf.sprintf "subsample/%d" m
  | Rescale { num; den } -> Printf.sprintf "rescale/%d:%d" num den
  | Gain g -> Printf.sprintf "gain/%g" g
  | Quantize l -> Printf.sprintf "quantize/%d" l
  | Rle_compress -> "rle"
  | Projection_sum w -> Printf.sprintf "projection/%d" w
  | Median w -> Printf.sprintf "median/%d" w
  | Dct b -> Printf.sprintf "dct/%d" b

let pp ppf t = Format.pp_print_string ppf (name t)

let video_codec () =
  [
    Subsample 2;
    Rescale { num = 3; den = 4 };
    Fir [| 0.25; 0.5; 0.25 |];
    Quantize 16;
    Rle_compress;
  ]

let ct_reconstruction () =
  [
    Projection_sum 8;
    Iir { b = [| 0.3; 0.3 |]; a = [| -0.4 |] };
    Rescale { num = 1; den = 2 };
    Gain 0.125;
  ]

let fir_bank s =
  List.init s (fun i ->
      let width = 2 + (i mod 4) in
      let c = 1.0 /. float_of_int width in
      Fir (Array.make width c))
