(** Deterministic synthetic signal sources.

    Everything in the simulator is reproducible from a seed: the PRNG is a
    small explicit splitmix64, so simulations and sampled experiments do not
    depend on OCaml's global [Random] state. *)

module Prng : sig
  type t

  val create : int -> t
  (** Seeded generator. *)

  val int : t -> int -> int
  (** [int t bound] is uniform on [0, bound). *)

  val float : t -> float -> float
  (** [float t bound] is uniform on [0, bound). *)

  val split : t -> t
  (** Derive an independent generator (for per-component streams). *)
end

type source =
  | Sine_mixture of (float * float) list
      (** (frequency, amplitude) components, evaluated per sample index *)
  | White_noise of float  (** amplitude *)
  | Step of { period : int; high : float }
  | Chirp of { f0 : float; f1 : float }  (** linear frequency ramp *)

val frame : ?rng:Prng.t -> source -> length:int -> index:int -> float array
(** [frame src ~length ~index] is the [index]-th frame of the stream.
    Deterministic for noiseless sources; noise draws from [rng]
    (required for [White_noise]). *)

val frames :
  ?seed:int -> source -> length:int -> count:int -> float array list
(** The first [count] frames. *)
