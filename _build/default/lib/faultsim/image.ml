type t = { width : int; height : int; data : float array }

let create ~width ~height ~f =
  if width <= 0 || height <= 0 then invalid_arg "Image.create: empty image";
  {
    width;
    height;
    data =
      Array.init (width * height) (fun i -> f (i mod width) (i / width));
  }

let in_range t x y = x >= 0 && x < t.width && y >= 0 && y < t.height

let get t x y =
  if not (in_range t x y) then invalid_arg "Image.get: out of range";
  t.data.((y * t.width) + x)

let set t x y v =
  if not (in_range t x y) then invalid_arg "Image.set: out of range";
  t.data.((y * t.width) + x) <- v

let phantom ~size =
  let disk cx cy r x y =
    let dx = float_of_int (x - cx) and dy = float_of_int (y - cy) in
    (dx *. dx) +. (dy *. dy) <= float_of_int (r * r)
  in
  let q = size / 4 in
  create ~width:size ~height:size ~f:(fun x y ->
      let v = ref 0.0 in
      if disk q q (max 1 (size / 6)) x y then v := !v +. 1.0;
      if disk (3 * q) (2 * q) (max 1 (size / 8)) x y then v := !v +. 0.6;
      if y > size / 2 && y < (size / 2) + max 1 (size / 10) && x > q then
        v := !v +. 0.4;
      !v)

let add_line t ~slope ~intercept ~value =
  for y = 0 to t.height - 1 do
    let x = (slope * y) + intercept in
    if x >= 0 && x < t.width then set t x y (get t x y +. value)
  done

(* Intercept range of the digital line family x = slope*y + b: b = x -
   slope*y with x in [0, w) and y in [0, h); both extremes are attained at
   y = 0 or y = h-1 since b is monotone in y. *)
let intercept_range t ~slope =
  let lo = min (-slope * 0) (-slope * (t.height - 1)) in
  let hi =
    max (t.width - 1 - (slope * 0)) (t.width - 1 - (slope * (t.height - 1)))
  in
  (lo, hi)

let projection t ~slope =
  let lo, hi = intercept_range t ~slope in
  let bins = Array.make (hi - lo + 1) 0.0 in
  for y = 0 to t.height - 1 do
    for x = 0 to t.width - 1 do
      let b = x - (slope * y) in
      bins.(b - lo) <- bins.(b - lo) +. get t x y
    done
  done;
  bins

let row_projection t =
  Array.init t.height (fun y ->
      let acc = ref 0.0 in
      for x = 0 to t.width - 1 do
        acc := !acc +. get t x y
      done;
      !acc)

let sinogram t ~slopes = Array.of_list (List.map (fun s -> projection t ~slope:s) slopes)

let back_project ~width ~height ~slopes sino =
  if List.length slopes <> Array.length sino then
    invalid_arg "Image.back_project: slope/sinogram length mismatch";
  let out = create ~width ~height ~f:(fun _ _ -> 0.0) in
  let norm = float_of_int (max 1 (List.length slopes)) in
  List.iteri
    (fun idx slope ->
      let lo =
        min (-slope * 0) (-slope * (height - 1))
      in
      let bins = sino.(idx) in
      for y = 0 to height - 1 do
        for x = 0 to width - 1 do
          let b = x - (slope * y) in
          let i = b - lo in
          if i >= 0 && i < Array.length bins then
            set out x y (get out x y +. (bins.(i) /. norm))
        done
      done)
    slopes;
  out

let hough_peaks t ~slopes ~threshold =
  List.concat_map
    (fun slope ->
      let lo, _ = intercept_range t ~slope in
      let bins = projection t ~slope in
      List.concat
        (List.init (Array.length bins) (fun i ->
             if bins.(i) > threshold then [ (slope, i + lo) ] else [])))
    slopes

let total t = Array.fold_left ( +. ) 0.0 t.data

let mean_abs_diff a b =
  if a.width <> b.width || a.height <> b.height then
    invalid_arg "Image.mean_abs_diff: dimension mismatch";
  let acc = ref 0.0 in
  Array.iteri (fun i v -> acc := !acc +. Float.abs (v -. b.data.(i))) a.data;
  !acc /. float_of_int (Array.length a.data)
