(** A small 2D image substrate for the paper's image-processing workloads.

    The paper cites pipelined architectures for the Hough and Radon
    transforms (computed tomography) as motivating applications.  This
    module provides row-major float images, shear-based projections (the
    discrete Radon transform along a family of digital lines), unfiltered
    back-projection, and a Hough-style line detector built on the same
    projections — enough to run a CT/feature-extraction chain through the
    simulator with verifiable numerics. *)

type t = { width : int; height : int; data : float array }

val create : width:int -> height:int -> f:(int -> int -> float) -> t
(** [create ~width ~height ~f] fills pixel [(x, y)] with [f x y]. *)

val get : t -> int -> int -> float
val set : t -> int -> int -> float -> unit

val phantom : size:int -> t
(** A deterministic test object: two disks and a bar on a dark background
    (a poor man's Shepp–Logan). *)

val add_line : t -> slope:int -> intercept:int -> value:float -> unit
(** Draw the digital line [x = slope * y + intercept] (one pixel per row,
    clipped to the image). *)

val projection : t -> slope:int -> float array
(** Shear projection: bin [b] sums the pixels on the digital line
    [x = slope * y + b], for [b] covering every line that meets the image.
    [slope = 0] is the column projection. *)

val row_projection : t -> float array
(** Sums along rows (one bin per y). *)

val sinogram : t -> slopes:int list -> float array array
(** One {!projection} per slope — the object's discrete Radon transform. *)

val back_project : width:int -> height:int -> slopes:int list -> float array array -> t
(** Unfiltered back-projection of a sinogram produced with the same slopes:
    each pixel accumulates the bins of the lines through it, normalised by
    the number of slopes.  Reconstruction is blurry (no filtering) but
    bright where the object was — sufficient for the round-trip checks. *)

val hough_peaks : t -> slopes:int list -> threshold:float -> (int * int) list
(** Hough-style line detection: [(slope, intercept)] pairs whose projection
    bin exceeds [threshold]. *)

val total : t -> float
(** Sum of all pixels (projection invariant: every projection of an image
    has the same total). *)

val mean_abs_diff : t -> t -> float
(** Mean absolute pixel difference (images must share dimensions). *)
