(** Event traces of simulation runs.

    A recorder collects the externally visible events of a run — faults,
    remaps (local splice vs full reconfiguration), stage migrations, stream
    loss — with enough data to audit a run after the fact, export it as
    CSV, or compare two runs for equality (replay determinism). *)

type event =
  | Fault of { round : int; node : int }
  | Remap of { round : int; local : bool; pipeline_processors : int }
  | Migration of { round : int; stages_moved : int }
  | Stream_lost of { round : int }

type recorder

val recorder : unit -> recorder
val record : recorder -> event -> unit

val events : recorder -> event list
(** In chronological (recording) order. *)

val count : recorder -> (event -> bool) -> int

val to_csv : recorder -> string
(** One line per event: [round,kind,detail]. *)

val equal : recorder -> recorder -> bool
(** Same events in the same order — the determinism check. *)

val pp_event : Format.formatter -> event -> unit
