(** ASCII Gantt charts of discrete-event runs.

    One row per host, time binned into a fixed-width strip; each cell shows
    what the host was doing in that bin: a digit/letter for the stage index
    it served most of the bin (0-9 then a-z), [.] for idle.  Latency spikes
    and post-fault load shifts are visible at a glance in terminal output
    and logs. *)

val render : ?width:int -> Des.outcome -> string
(** [render ~width outcome] (default width 80 columns) charts
    [outcome.activity].  Hosts appear in ascending id order; the time axis
    is annotated with its scale.  An outcome with no activity renders an
    explanatory line. *)
