let stage_char stage =
  if stage < 10 then Char.chr (Char.code '0' + stage)
  else if stage < 36 then Char.chr (Char.code 'a' + stage - 10)
  else '#'

let render ?(width = 80) (outcome : Des.outcome) =
  match outcome.Des.activity with
  | [] -> "(no activity recorded)\n"
  | activity ->
    let hosts =
      List.sort_uniq compare (List.map (fun a -> a.Des.host) activity)
    in
    let horizon = max 1 outcome.Des.makespan in
    let bin_size = max 1 ((horizon + width - 1) / width) in
    let bins = (horizon + bin_size - 1) / bin_size in
    let buf = Buffer.create 1024 in
    Buffer.add_string buf
      (Printf.sprintf
         "host x time gantt: %d work units per column, '.' idle, digits = \
          stage index\n"
         bin_size);
    List.iter
      (fun host ->
        (* For each bin, the stage that occupied the largest share. *)
        let occupancy = Array.make bins None in
        let coverage = Array.make bins 0 in
        List.iter
          (fun a ->
            if a.Des.host = host then begin
              let first = a.Des.start / bin_size in
              let last = min (bins - 1) ((a.Des.finish - 1) / bin_size) in
              for b = max 0 first to last do
                let bin_start = b * bin_size in
                let bin_end = bin_start + bin_size in
                let overlap =
                  min a.Des.finish bin_end - max a.Des.start bin_start
                in
                if overlap > coverage.(b) then begin
                  coverage.(b) <- overlap;
                  occupancy.(b) <- Some a.Des.stage
                end
              done
            end)
          activity;
        Buffer.add_string buf (Printf.sprintf "p%-4d |" host);
        Array.iter
          (fun cell ->
            Buffer.add_char buf
              (match cell with Some s -> stage_char s | None -> '.'))
          occupancy;
        Buffer.add_string buf "|\n")
      hosts;
    Buffer.add_string buf
      (Printf.sprintf "       0%*d\n" (bins - 1) horizon);
    Buffer.contents buf
