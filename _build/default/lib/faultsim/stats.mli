(** Summary statistics and ASCII histograms for simulation outputs
    (latency arrays, lifetimes, utilization series). *)

type summary = {
  count : int;
  mean : float;
  stddev : float;  (** population standard deviation *)
  min_value : float;
  max_value : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

val summarise : float array -> summary
(** Raises [Invalid_argument] on an empty array. *)

val of_ints : int array -> summary

val percentile : float array -> int -> float
(** [percentile xs p] for [0 <= p <= 100], nearest-rank on a sorted copy. *)

val histogram : ?bins:int -> ?width:int -> float array -> string
(** An ASCII histogram: one row per bin, bar length proportional to count,
    annotated with the bin range and count.  Default 10 bins, 40-column
    bars.  Constant data collapses to a single bin. *)

val pp_summary : Format.formatter -> summary -> unit
