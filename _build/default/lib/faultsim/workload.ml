let presets =
  [
    ("video", "asymmetric video-compression front end (§1): sub2|rescale3:4|fir3|quant16|rle");
    ("ct", "Radon/CT reconstruction chain: proj8|iir|rescale1:2|gain0.125");
    ("firbankN", "N distinct small FIR stages (e.g. firbank12)");
  ]

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let after ~prefix s =
  String.sub s (String.length prefix) (String.length s - String.length prefix)

let parse_stage token =
  let num ~prefix ~min_value of_raw =
    match int_of_string_opt (after ~prefix token) with
    | Some v when v >= min_value -> Ok (of_raw v)
    | Some _ | None -> Error (Printf.sprintf "bad stage %S" token)
  in
  if token = "iir" then Ok (Stage.Iir { b = [| 0.3; 0.3 |]; a = [| -0.4 |] })
  else if token = "rle" then Ok Stage.Rle_compress
  else if starts_with ~prefix:"fir" token then
    num ~prefix:"fir" ~min_value:1 (fun n ->
        Stage.Fir (Array.make n (1.0 /. float_of_int n)))
  else if starts_with ~prefix:"sub" token then
    num ~prefix:"sub" ~min_value:1 (fun n -> Stage.Subsample n)
  else if starts_with ~prefix:"rescale" token then begin
    match String.split_on_char ':' (after ~prefix:"rescale" token) with
    | [ a; b ] -> (
      match (int_of_string_opt a, int_of_string_opt b) with
      | Some num, Some den when num >= 1 && den >= 1 ->
        Ok (Stage.Rescale { num; den })
      | _ -> Error (Printf.sprintf "bad stage %S" token))
    | _ -> Error (Printf.sprintf "bad stage %S" token)
  end
  else if starts_with ~prefix:"gain" token then begin
    match float_of_string_opt (after ~prefix:"gain" token) with
    | Some g -> Ok (Stage.Gain g)
    | None -> Error (Printf.sprintf "bad stage %S" token)
  end
  else if starts_with ~prefix:"quant" token then
    num ~prefix:"quant" ~min_value:2 (fun n -> Stage.Quantize n)
  else if starts_with ~prefix:"proj" token then
    num ~prefix:"proj" ~min_value:1 (fun n -> Stage.Projection_sum n)
  else if starts_with ~prefix:"median" token then begin
    match int_of_string_opt (after ~prefix:"median" token) with
    | Some w when w >= 1 && w mod 2 = 1 -> Ok (Stage.Median w)
    | Some _ | None -> Error (Printf.sprintf "bad stage %S" token)
  end
  else if starts_with ~prefix:"dct" token then
    num ~prefix:"dct" ~min_value:1 (fun n -> Stage.Dct n)
  else Error (Printf.sprintf "unknown stage %S" token)

let parse text =
  let text = String.trim text in
  if text = "video" then Ok (Stage.video_codec ())
  else if text = "ct" then Ok (Stage.ct_reconstruction ())
  else if starts_with ~prefix:"firbank" text then begin
    match int_of_string_opt (after ~prefix:"firbank" text) with
    | Some n when n >= 1 -> Ok (Stage.fir_bank n)
    | Some _ | None -> Error (Printf.sprintf "bad preset %S" text)
  end
  else begin
    let tokens =
      List.filter (fun s -> s <> "")
        (List.map String.trim (String.split_on_char '|' text))
    in
    if tokens = [] then Error "empty chain"
    else begin
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | tok :: rest -> (
          match parse_stage tok with
          | Ok stage -> go (stage :: acc) rest
          | Error e -> Error e)
      in
      go [] tokens
    end
  end

let stage_to_string = function
  | Stage.Fir c -> Printf.sprintf "fir%d" (Array.length c)
  | Stage.Iir _ -> "iir"
  | Stage.Subsample n -> Printf.sprintf "sub%d" n
  | Stage.Rescale { num; den } -> Printf.sprintf "rescale%d:%d" num den
  | Stage.Gain g -> Printf.sprintf "gain%g" g
  | Stage.Quantize n -> Printf.sprintf "quant%d" n
  | Stage.Rle_compress -> "rle"
  | Stage.Projection_sum w -> Printf.sprintf "proj%d" w
  | Stage.Median w -> Printf.sprintf "median%d" w
  | Stage.Dct b -> Printf.sprintf "dct%d" b

let to_string stages = String.concat "|" (List.map stage_to_string stages)
