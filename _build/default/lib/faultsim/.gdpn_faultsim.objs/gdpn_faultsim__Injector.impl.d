lib/faultsim/injector.ml: Array Fun Gdpn_core Instance List Machine Stream
