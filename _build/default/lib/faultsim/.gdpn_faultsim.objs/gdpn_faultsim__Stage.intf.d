lib/faultsim/stage.mli: Format
