lib/faultsim/des.mli: Format Machine Stage
