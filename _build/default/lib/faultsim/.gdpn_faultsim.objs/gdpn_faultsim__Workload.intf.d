lib/faultsim/workload.mli: Stage
