lib/faultsim/runner.mli: Format Injector Machine Stage Stream Trace
