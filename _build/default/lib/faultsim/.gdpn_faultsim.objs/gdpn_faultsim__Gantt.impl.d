lib/faultsim/gantt.ml: Array Buffer Char Des List Printf
