lib/faultsim/des.ml: Array Format Gdpn_core Gdpn_graph List Machine Queue Runner Stage
