lib/faultsim/trace.mli: Format
