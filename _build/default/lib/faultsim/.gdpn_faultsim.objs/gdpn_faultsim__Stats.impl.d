lib/faultsim/stats.ml: Array Buffer Float Format Printf String
