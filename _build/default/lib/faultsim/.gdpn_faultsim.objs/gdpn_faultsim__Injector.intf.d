lib/faultsim/injector.mli: Gdpn_core Machine Stream
