lib/faultsim/stream.ml: Array Float List
