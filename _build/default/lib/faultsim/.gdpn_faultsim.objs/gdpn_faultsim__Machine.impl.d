lib/faultsim/machine.ml: Gdpn_core Gdpn_graph Instance List Pipeline Reconfig Repair
