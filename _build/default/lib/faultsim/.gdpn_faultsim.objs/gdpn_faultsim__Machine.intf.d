lib/faultsim/machine.mli: Gdpn_core
