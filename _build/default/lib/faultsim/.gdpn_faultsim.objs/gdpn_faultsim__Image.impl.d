lib/faultsim/image.ml: Array Float List
