lib/faultsim/runner.ml: Array Format Gdpn_core Injector List Machine Option Stage Stream Trace
