lib/faultsim/stats.mli: Format
