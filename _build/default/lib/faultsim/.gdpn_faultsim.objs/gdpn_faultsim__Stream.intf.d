lib/faultsim/stream.mli:
