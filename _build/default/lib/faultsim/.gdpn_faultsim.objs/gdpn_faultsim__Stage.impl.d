lib/faultsim/stage.ml: Array Float Format List Printf
