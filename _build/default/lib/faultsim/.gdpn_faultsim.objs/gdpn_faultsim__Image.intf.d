lib/faultsim/image.mli:
