lib/faultsim/workload.ml: Array List Printf Stage String
