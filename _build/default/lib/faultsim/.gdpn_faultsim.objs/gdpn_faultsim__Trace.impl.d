lib/faultsim/trace.ml: Format List Printf String
