lib/faultsim/console.mli: Gdpn_core Machine
