lib/faultsim/gantt.mli: Des
