lib/faultsim/console.ml: Format Gdpn_core Instance List Machine Pipeline Printf Random Render String Verify
