type event =
  | Fault of { round : int; node : int }
  | Remap of { round : int; local : bool; pipeline_processors : int }
  | Migration of { round : int; stages_moved : int }
  | Stream_lost of { round : int }

type recorder = { mutable rev_events : event list }

let recorder () = { rev_events = [] }
let record r e = r.rev_events <- e :: r.rev_events
let events r = List.rev r.rev_events
let count r p = List.length (List.filter p (events r))

let pp_event ppf = function
  | Fault { round; node } -> Format.fprintf ppf "r%d fault node=%d" round node
  | Remap { round; local; pipeline_processors } ->
    Format.fprintf ppf "r%d remap %s procs=%d" round
      (if local then "local" else "full")
      pipeline_processors
  | Migration { round; stages_moved } ->
    Format.fprintf ppf "r%d migration stages=%d" round stages_moved
  | Stream_lost { round } -> Format.fprintf ppf "r%d stream-lost" round

let to_csv r =
  let line = function
    | Fault { round; node } -> Printf.sprintf "%d,fault,%d" round node
    | Remap { round; local; pipeline_processors } ->
      Printf.sprintf "%d,remap-%s,%d" round
        (if local then "local" else "full")
        pipeline_processors
    | Migration { round; stages_moved } ->
      Printf.sprintf "%d,migration,%d" round stages_moved
    | Stream_lost { round } -> Printf.sprintf "%d,stream-lost," round
  in
  String.concat "\n" ("round,kind,detail" :: List.map line (events r))

let equal a b = events a = events b
