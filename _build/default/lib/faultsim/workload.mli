(** Named workloads and a textual stage-chain language.

    The CLI and examples describe stage chains as strings, e.g.
    ["sub2|rescale3:4|fir5|quant16|rle"] — stages separated by [|], each a
    name with an inline parameter.  Grammar per stage:

    - [firN]        — N-tap moving-average FIR (N >= 1)
    - [iir]         — the standard smoothing IIR used by the CT chain
    - [subN]        — subsample by N
    - [rescaleA:B]  — resample by A/B
    - [gainX]       — multiply by float X
    - [quantN]      — N-level quantizer
    - [rle]         — run-length coding
    - [projN]       — width-N projection sums

    Named presets: ["video"], ["ct"], ["firbankN"]. *)

val parse : string -> (Stage.t list, string) result
(** Parse a chain description (presets allowed as a whole string only).
    The error names the offending stage token. *)

val to_string : Stage.t list -> string
(** Render a chain back into the language (inverse of {!parse} up to
    preset expansion). *)

val presets : (string * string) list
(** [(name, description)] of the named workloads. *)
