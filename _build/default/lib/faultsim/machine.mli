(** Network state: a solution-graph instance, its accumulated faults, and
    the currently embedded pipeline.

    Injecting a fault triggers reconfiguration ({!Gdpn_core.Reconfig}); the
    machine records whether a pipeline could be re-embedded and how many
    remaps have happened.  A machine whose fault count exceeds [k] may
    legitimately lose its pipeline. *)

type t

type inject_result =
  | Remapped of Gdpn_core.Pipeline.t  (** new pipeline after the fault *)
  | Unchanged  (** node already faulty: no-op *)
  | Lost  (** no pipeline exists any more *)

val create : ?local_repair:bool -> Gdpn_core.Instance.t -> t
(** Fresh machine with no faults and the initial pipeline embedded.
    [local_repair] (default true) enables the O(degree) splice path in
    {!inject}; disable it to force full reconfiguration on every fault
    (the B8/E14 ablation baseline). *)

val instance : t -> Gdpn_core.Instance.t
val fault_count : t -> int
val faults : t -> int list
val remap_count : t -> int

val pipeline : t -> Gdpn_core.Pipeline.t option
(** Current embedding ([None] once lost). *)

val healthy_processor_count : t -> int

val used_processor_count : t -> int
(** Processors on the current pipeline — for the paper's constructions this
    equals {!healthy_processor_count} whenever at most [k] faults have been
    injected (graceful degradation). *)

val utilization : t -> float
(** [used / healthy]; 0 when the pipeline is lost, 1 when all healthy
    processors are in use. *)

val inject : t -> int -> inject_result
(** Mark a node faulty and re-embed: first the O(degree) local patch
    ({!Gdpn_core.Repair}), then the full strategy solver. *)

val local_repair_count : t -> int
(** How many injections were absorbed by a local splice instead of a full
    reconfiguration. *)

val solver_budget : int ref
(** Expansion budget handed to the reconfiguration solver (exposed so
    benchmarks can tighten it). *)
