open Gdpn_core
module Bitset = Gdpn_graph.Bitset

type t = {
  inst : Instance.t;
  fault_mask : Bitset.t;
  local_repair : bool;
  mutable fault_list : int list;
  mutable current : Pipeline.t option;
  mutable remaps : int;
  mutable local_repairs : int;
}

type inject_result = Remapped of Pipeline.t | Unchanged | Lost

let solver_budget = ref 2_000_000

let resolve t =
  match Reconfig.solve ~budget:!solver_budget t.inst ~faults:t.fault_mask with
  | Reconfig.Pipeline p ->
    t.current <- Some p;
    Some p
  | Reconfig.No_pipeline | Reconfig.Gave_up ->
    t.current <- None;
    None

let create ?(local_repair = true) inst =
  let t =
    {
      inst;
      fault_mask = Bitset.create (Instance.order inst);
      local_repair;
      fault_list = [];
      current = None;
      remaps = 0;
      local_repairs = 0;
    }
  in
  ignore (resolve t);
  t

let instance t = t.inst
let fault_count t = List.length t.fault_list
let faults t = List.rev t.fault_list
let remap_count t = t.remaps
let pipeline t = t.current

let healthy_processor_count t =
  List.length
    (List.filter
       (fun p -> not (Bitset.mem t.fault_mask p))
       (Instance.processors t.inst))

let used_processor_count t =
  match t.current with None -> 0 | Some p -> Pipeline.processor_count p

let utilization t =
  let healthy = healthy_processor_count t in
  if healthy = 0 then 0.0
  else float_of_int (used_processor_count t) /. float_of_int healthy

let local_repair_count t = t.local_repairs

let inject t node =
  if node < 0 || node >= Instance.order t.inst then
    invalid_arg "Machine.inject: node out of range";
  if Bitset.mem t.fault_mask node then Unchanged
  else begin
    Bitset.add t.fault_mask node;
    t.fault_list <- node :: t.fault_list;
    t.remaps <- t.remaps + 1;
    match t.current with
    | None -> ( match resolve t with Some p -> Remapped p | None -> Lost)
    | Some _ when not t.local_repair -> (
      match resolve t with Some p -> Remapped p | None -> Lost)
    | Some current -> (
      (* Try the O(degree) local patch before the full solver. *)
      match
        Repair.repair ~budget:!solver_budget t.inst ~current
          ~faults:t.fault_mask ~failed:node
      with
      | Repair.Unchanged p | Repair.Spliced p ->
        t.local_repairs <- t.local_repairs + 1;
        t.current <- Some p;
        Remapped p
      | Repair.Resolved p ->
        t.current <- Some p;
        Remapped p
      | Repair.Lost ->
        t.current <- None;
        Lost)
  end
