(** Processing-stage kernels for pipeline applications.

    The paper's introduction motivates gracefully-degradable pipelines with
    communication-intensive stream applications whose stages are
    "subsampling, rescaling, and finite impulse response (FIR) or infinite
    impulse response (IIR) filtering", textual-substitution compression, and
    Hough/Radon transforms.  These kernels implement those stage types over
    sample frames so the simulator processes real data — mapping the stage
    chain onto the network only affects timing, never values. *)

type t =
  | Fir of float array  (** FIR filter with the given coefficients *)
  | Iir of { b : float array; a : float array }
      (** IIR direct-form-I filter: [a.(0)] is implicitly 1 *)
  | Subsample of int  (** keep every m-th sample *)
  | Rescale of { num : int; den : int }
      (** linear-interpolation resampling by [num/den] *)
  | Gain of float
  | Quantize of int  (** uniform quantizer with the given level count *)
  | Rle_compress
      (** run-length coding of equal consecutive samples into
          (value, count) pairs — the 1D textual-substitution stand-in *)
  | Projection_sum of int
      (** sum over sliding windows of the given width — the Radon/Hough
          projection stand-in (a projection is a windowed line sum) *)
  | Median of int
      (** sliding-window median of odd width — nonlinear denoising *)
  | Dct of int
      (** block DCT-II with the given block size — the transform stage of
          the §1 video-compression motivation *)

val apply : t -> float array -> float array
(** Apply the kernel to one frame. *)

val output_length : t -> int -> int
(** Frame length after the stage, for a worst-case input of the given
    length ([Rle_compress] counts as length-preserving: no runs).  Agrees
    with [Array.length (apply t frame)] except for that RLE worst-casing.
    Drives the cost models in {!Runner} and {!Des}. *)

val cost : t -> frame:int -> int
(** Abstract work units to process a frame of the given length — drives the
    simulator's timing model.  Roughly proportional to the number of
    multiply-accumulates the kernel performs. *)

val state_size : t -> int
(** Words of persistent state the stage carries between frames (filter
    delay lines, dictionary entries).  Migrating a stage to another
    processor must move this state; stateless stages migrate for free.
    FIR: taps-1; IIR: feedforward+feedback history; others: 0. *)

val name : t -> string

val video_codec : unit -> t list
(** A representative asymmetric video-compression stage chain (§1):
    subsample, rescale, FIR low-pass, quantize, RLE. *)

val ct_reconstruction : unit -> t list
(** A Radon/CT-flavoured chain [1]: projection sums, IIR smoothing,
    rescale, gain. *)

val fir_bank : int -> t list
(** [fir_bank s] is a chain of [s] distinct small FIR stages — a generic
    DSP workload whose length is easy to parameterise. *)

val pp : Format.formatter -> t -> unit
