(** Hayes's fault-tolerant cycle (Hayes 1976) — the construction the
    paper's §3.4 circulant subgraph extends ("a supergraph of Hayes's
    construction with the same maximum degree").

    For a length-[n] cycle target and [k] faults, the realization is the
    circulant on [n + k] nodes with offsets [1 .. floor(k/2) + 1].  Hayes's
    theorem: after any [<= k] node faults, the survivors contain a
    Hamiltonian cycle — in modern terms, the cycle degrades gracefully.
    This module builds the graph and machine-checks the theorem by
    exhaustive fault enumeration with the spanning-cycle solver, tying the
    paper's Theorem 3.17 back to its foundation. *)

val graph : n:int -> k:int -> Gdpn_graph.Graph.t
(** The circulant realization.  Requires [n >= 3] and [k >= 1], and enough
    nodes that the offsets stay distinct ([n + k > 2 * (floor(k/2) + 1)]). *)

val reconfigure :
  ?budget:int -> n:int -> k:int -> faults:int list -> unit -> int list option
(** A spanning cycle of the healthy nodes, if one exists. *)

val verify_exhaustive : ?budget:int -> n:int -> k:int -> unit -> bool
(** Hayes's theorem for this instance: every fault set of size [0..k]
    leaves a spanning cycle of the survivors. *)
