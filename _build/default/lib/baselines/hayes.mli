(** A Hayes-style k-fault-tolerant linear array (Hayes 1976), adapted as a
    pipeline scheme.

    Hayes's graph model produces, for a length-[n+k] linear-array target, the
    path power: processors [0..n+k-1] with [i ~ j] iff [|i - j| <= k+1].
    Under any [<= k] processor faults the healthy processors taken in
    increasing order form a path — so the array itself degrades gracefully.
    Its weakness is exactly the paper's §2 critique: the model is unlabeled,
    so I/O devices are wired where the fault-free design puts its ports —
    the input device to processor 0, the output device to processor
    [n+k-1].  A single fault on a port processor (or a device) disconnects
    the stream even though the array's internal guarantee holds, so the
    scheme is {e not} k-gracefully-degradable in the labeled model.

    Costs: [n+k+2] nodes but maximum processor degree [2(k+1) + 1] versus
    the paper's optimal [k+2]. *)

val graph : n:int -> k:int -> Gdpn_graph.Graph.t
(** The path power on [n+k] processors plus device nodes [n+k] (input,
    attached to processor 0) and [n+k+1] (output, attached to processor
    [n+k-1]). *)

val scheme : n:int -> k:int -> Scheme.t

val embed : n:int -> k:int -> faults:int list -> int list option
(** The reconfiguration algorithm: healthy processors in increasing index
    order, provided no index gap exceeds [k+1], the port processors and the
    devices are healthy, and at least [n] processors survive.  Returns the
    processor path. *)
