(** A fault-tolerance scheme reduced to the interface the comparison
    experiment needs: static costs (nodes, degree) and a tolerance oracle.

    The oracle answers, for a concrete fault set, whether the scheme still
    provides a pipeline with I/O connectivity, and if so how many processors
    that pipeline uses.  Utilization — used processors over healthy
    processors — is the quantity the paper's graceful degradation improves
    over prior work (§2: "the previous work does not guarantee that all of
    the healthy processors can be utilized"). *)

type t = {
  name : string;
  total_nodes : int;  (** processors + I/O devices *)
  processors : int list;  (** processor node ids *)
  max_degree : int;  (** maximum processor degree *)
  n : int;  (** guaranteed pipeline length under <= k faults *)
  k : int;
  tolerate : int list -> int option;
      (** [tolerate faults] is [Some used] when a pipeline with I/O
          connectivity survives, using [used] processors; [None] when the
          fault set defeats the scheme.  Node ids
          [0 .. total_nodes - 1] are valid fault targets. *)
}

val healthy_processors : t -> int list -> int
(** Healthy processor count for a fault set. *)

val utilization : t -> int list -> float option
(** [used / healthy] when tolerated. *)
