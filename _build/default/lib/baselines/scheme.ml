type t = {
  name : string;
  total_nodes : int;
  processors : int list;
  max_degree : int;
  n : int;
  k : int;
  tolerate : int list -> int option;
}

let healthy_processors t faults =
  List.length (List.filter (fun p -> not (List.mem p faults)) t.processors)

let utilization t faults =
  match t.tolerate faults with
  | None -> None
  | Some used ->
    let healthy = healthy_processors t faults in
    if healthy = 0 then Some 0.0
    else Some (float_of_int used /. float_of_int healthy)
