module Graph = Gdpn_graph.Graph
module Builder = Gdpn_graph.Builder

let graph ~n ~k =
  let procs = n + k in
  let b = Graph.builder (procs + 2) in
  Builder.add_path_on b (List.init n Fun.id);
  let spares = List.init k (fun i -> n + i) in
  Builder.add_clique_on b spares;
  List.iter
    (fun s ->
      for j = 0 to n - 1 do
        Graph.add_edge b s j
      done)
    spares;
  let input = procs and output = procs + 1 in
  Graph.add_edge b input 0;
  Graph.add_edge b output (n - 1);
  List.iter
    (fun s ->
      Graph.add_edge b input s;
      Graph.add_edge b output s)
    spares;
  Graph.freeze b

let scheme ~n ~k =
  let g = graph ~n ~k in
  let procs = n + k in
  {
    Scheme.name = "cold-spares";
    total_nodes = procs + 2;
    processors = List.init procs Fun.id;
    max_degree =
      List.fold_left
        (fun m v -> max m (Graph.degree g v))
        0
        (List.init procs Fun.id);
    n;
    k;
    tolerate =
      (fun faults ->
        let faults = List.sort_uniq compare faults in
        let device_faulty =
          List.exists (fun v -> v = procs || v = procs + 1) faults
        in
        let proc_faults =
          List.length (List.filter (fun v -> v >= 0 && v < procs) faults)
        in
        if device_faulty || procs - proc_faults < n then None else Some n);
  }
