open Gdpn_core
module Combinat = Gdpn_graph.Combinat

type row = {
  scheme : string;
  total_nodes : int;
  max_degree : int;
  coverage : float;
  mean_utilization : float;
  min_utilization : float;
}

let gdpn_scheme ~n ~k =
  let inst = Family.build ~n ~k in
  {
    Scheme.name = "gdpn";
    total_nodes = Instance.order inst;
    processors = Instance.processors inst;
    max_degree = Instance.max_processor_degree inst;
    n;
    k;
    tolerate =
      (fun faults ->
        match Reconfig.solve_list inst ~faults with
        | Reconfig.Pipeline p -> Some (Pipeline.processor_count p)
        | Reconfig.No_pipeline | Reconfig.Gave_up -> None);
  }

let evaluate ?sample (s : Scheme.t) =
  let tolerated = ref 0 in
  let total = ref 0 in
  let util_sum = ref 0.0 in
  let util_min = ref infinity in
  let consider faults =
    incr total;
    match Scheme.utilization s faults with
    | None -> ()
    | Some u ->
      incr tolerated;
      util_sum := !util_sum +. u;
      util_min := min !util_min u
  in
  (match sample with
  | None ->
    Combinat.iter_subsets_up_to s.Scheme.total_nodes s.Scheme.k
      (fun buf len -> consider (Array.to_list (Array.sub buf 0 len)))
  | Some (trials, seed) ->
    let rng = Random.State.make [| seed |] in
    for _ = 1 to trials do
      let set = Combinat.sample_up_to rng s.Scheme.total_nodes s.Scheme.k in
      consider (Array.to_list set)
    done);
  {
    scheme = s.Scheme.name;
    total_nodes = s.Scheme.total_nodes;
    max_degree = s.Scheme.max_degree;
    coverage =
      (if !total = 0 then 0.0
       else float_of_int !tolerated /. float_of_int !total);
    mean_utilization =
      (if !tolerated = 0 then 0.0
       else !util_sum /. float_of_int !tolerated);
    min_utilization = (if !tolerated = 0 then 0.0 else !util_min);
  }

let table ?sample ~n ~k () =
  List.map (evaluate ?sample)
    [
      gdpn_scheme ~n ~k; Hayes.scheme ~n ~k; Spares.scheme ~n ~k;
      Rosenberg.scheme ~n ~k;
    ]

let utilization_vs_faults (s : Scheme.t) ~f ~trials ~seed =
  let rng = Random.State.make [| seed |] in
  let sum = ref 0.0 in
  let count = ref 0 in
  for _ = 1 to trials do
    let set = Array.to_list (Combinat.sample rng s.Scheme.total_nodes f) in
    match Scheme.utilization s set with
    | None -> incr count (* counts as zero utilization: stream is down *)
    | Some u ->
      sum := !sum +. u;
      incr count
  done;
  if !count = 0 then 0.0 else !sum /. float_of_int !count

let pp_row ppf r =
  Format.fprintf ppf "%-12s nodes=%-4d maxdeg=%-3d coverage=%.4f util(mean)=%.4f util(min)=%.4f"
    r.scheme r.total_nodes r.max_degree r.coverage r.mean_utilization
    r.min_utilization

let pp_table ppf rows =
  List.iter (fun r -> Format.fprintf ppf "%a@." pp_row r) rows
