(** Beyond-spec survival (experiment E15).

    The designed tolerance [k] is a worst-case guarantee: {e every} fault
    set of size [k] is survivable, and some of size [k+1] is not.  In
    practice faults are random, not adversarial, and the constructions
    absorb far more than [k] before the stream dies.  This module measures
    the lifetime distribution: nodes fail one at a time in random order
    until no pipeline survives. *)

type stats = {
  trials : int;
  designed : int;  (** the scheme's k *)
  mean : float;  (** mean faults absorbed before loss *)
  min_faults : int;
  max_faults : int;
}

val instance_lifetime :
  rng:Random.State.t -> trials:int -> Gdpn_core.Instance.t -> stats
(** Faults strike uniformly at random among not-yet-failed nodes; each step
    re-solves (pipelines may use all healthy processors at every step).
    The count recorded is the number of faults survived (the stream dies on
    fault [count + 1]). *)

val scheme_lifetime : rng:Random.State.t -> trials:int -> Scheme.t -> stats
(** Same protocol through the scheme oracle, for the baselines. *)

val pp_stats : Format.formatter -> stats -> unit
