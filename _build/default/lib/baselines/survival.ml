open Gdpn_core

type stats = {
  trials : int;
  designed : int;
  mean : float;
  min_faults : int;
  max_faults : int;
}

let collect ~trials ~designed run_one =
  let total = ref 0 in
  let min_f = ref max_int in
  let max_f = ref 0 in
  for t = 1 to trials do
    let survived = run_one t in
    total := !total + survived;
    min_f := min !min_f survived;
    max_f := max !max_f survived
  done;
  {
    trials;
    designed;
    mean = float_of_int !total /. float_of_int (max 1 trials);
    min_faults = (if !min_f = max_int then 0 else !min_f);
    max_faults = !max_f;
  }

let shuffled rng count =
  let order = Array.init count Fun.id in
  for i = count - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let tmp = order.(i) in
    order.(i) <- order.(j);
    order.(j) <- tmp
  done;
  order

let instance_lifetime ~rng ~trials inst =
  let order_n = Instance.order inst in
  collect ~trials ~designed:inst.Instance.k (fun _ ->
      let seq = shuffled rng order_n in
      let faults = Gdpn_graph.Bitset.create order_n in
      let rec go i survived =
        if i >= order_n then survived
        else begin
          Gdpn_graph.Bitset.add faults seq.(i);
          match Reconfig.solve inst ~faults with
          | Reconfig.Pipeline _ -> go (i + 1) (survived + 1)
          | Reconfig.No_pipeline | Reconfig.Gave_up -> survived
        end
      in
      go 0 0)

let scheme_lifetime ~rng ~trials (s : Scheme.t) =
  collect ~trials ~designed:s.Scheme.k (fun _ ->
      let seq = shuffled rng s.Scheme.total_nodes in
      let rec go i acc survived =
        if i >= s.Scheme.total_nodes then survived
        else begin
          let acc = seq.(i) :: acc in
          match s.Scheme.tolerate acc with
          | Some _ -> go (i + 1) acc (survived + 1)
          | None -> survived
        end
      in
      go 0 [] 0)

let pp_stats ppf s =
  Format.fprintf ppf
    "designed k=%d, survived %.2f faults on average (min %d, max %d, %d trials)"
    s.designed s.mean s.min_faults s.max_faults s.trials
