(** A cold-spare k-fault-tolerant pipeline (the Rosenberg/Diogenes-flavoured
    reconfigurable-array approach, §2).

    [n] active processors form the working pipeline; [k] spares can
    substitute for any faulty position, which requires heavy interconnect:
    every spare is wired to every active position and to the other spares
    (so adjacent faulty positions can both be patched).  Single input and
    output devices attach to the pipeline ends through the reconfiguration
    fabric (modelled as device-to-{position-0-capable} wiring).

    Guarantees: any [<= k] {e processor} faults are tolerated — but the
    pipeline always has exactly [n] processors, so with [f < k] faults,
    [k - f] healthy processors sit idle: utilization [n / (n+k-f)].  Device
    faults are fatal (single ports).  Maximum degree grows with [n]
    (a spare touches every active position), versus the paper's [k+2]. *)

val graph : n:int -> k:int -> Gdpn_graph.Graph.t
(** Concrete wiring: actives [0..n-1] in a path, spares [n..n+k-1] complete
    to the actives and to each other, input device [n+k] wired to active 0
    and all spares, output device [n+k+1] wired to active [n-1] and all
    spares. *)

val scheme : n:int -> k:int -> Scheme.t
