module Graph = Gdpn_graph.Graph
module Builder = Gdpn_graph.Builder
module Bitset = Gdpn_graph.Bitset
module Combinat = Gdpn_graph.Combinat
module Hamilton = Gdpn_graph.Hamilton

(* Even k: offsets 1..k/2+1.  Odd k: offsets 1..(k+1)/2 plus the diameters
   (requires an even node count) — the same bisector device the paper's
   §3.4 construction uses.  Both give maximum degree k+2. *)
let offsets ~m k =
  if k mod 2 = 0 then List.init ((k / 2) + 1) (fun i -> i + 1)
  else List.init ((k + 1) / 2) (fun i -> i + 1) @ [ m / 2 ]

let graph ~n ~k =
  if n < 3 || k < 1 then invalid_arg "Hayes_cycle.graph: need n >= 3, k >= 1";
  let m = n + k in
  if k mod 2 = 1 && m mod 2 = 1 then
    invalid_arg
      "Hayes_cycle.graph: odd k needs an even node count (diametral edges)";
  if m <= 2 * ((k / 2) + 2) then
    invalid_arg "Hayes_cycle.graph: too few nodes for the offset set";
  Builder.circulant m (offsets ~m k)

let reconfigure ?budget ~n ~k ~faults () =
  let g = graph ~n ~k in
  let alive = Bitset.full (Graph.order g) in
  List.iter
    (fun v -> if v >= 0 && v < Graph.order g then Bitset.remove alive v)
    faults;
  match Hamilton.spanning_cycle ?budget g ~alive with
  | Hamilton.Path cycle -> Some cycle
  | Hamilton.No_path | Hamilton.Budget_exceeded -> None

let verify_exhaustive ?budget ~n ~k () =
  let g = graph ~n ~k in
  let m = Graph.order g in
  let ok = ref true in
  (try
     Combinat.iter_subsets_up_to m k (fun buf len ->
         let alive = Bitset.full m in
         for i = 0 to len - 1 do
           Bitset.remove alive buf.(i)
         done;
         match Hamilton.spanning_cycle ?budget g ~alive with
         | Hamilton.Path _ -> ()
         | Hamilton.No_path | Hamilton.Budget_exceeded ->
           ok := false;
           raise Exit)
   with Exit -> ());
  !ok
