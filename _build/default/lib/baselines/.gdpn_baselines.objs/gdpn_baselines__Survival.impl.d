lib/baselines/survival.ml: Array Format Fun Gdpn_core Gdpn_graph Instance Random Reconfig Scheme
