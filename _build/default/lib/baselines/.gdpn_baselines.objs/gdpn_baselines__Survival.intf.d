lib/baselines/survival.mli: Format Gdpn_core Random Scheme
