lib/baselines/hayes.ml: Array Fun Gdpn_graph List Option Scheme
