lib/baselines/compare.ml: Array Family Format Gdpn_core Gdpn_graph Hayes Instance List Pipeline Random Reconfig Rosenberg Scheme Spares
