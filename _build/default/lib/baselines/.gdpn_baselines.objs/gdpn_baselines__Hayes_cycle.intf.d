lib/baselines/hayes_cycle.mli: Gdpn_graph
