lib/baselines/scheme.mli:
