lib/baselines/spares.ml: Fun Gdpn_graph List Scheme
