lib/baselines/rosenberg.ml: Array Fun List Option Scheme
