lib/baselines/hayes_cycle.ml: Array Gdpn_graph List
