lib/baselines/spares.mli: Gdpn_graph Scheme
