lib/baselines/hayes.mli: Gdpn_graph Scheme
