lib/baselines/scheme.ml: List
