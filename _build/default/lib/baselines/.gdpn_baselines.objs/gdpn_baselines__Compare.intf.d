lib/baselines/compare.mli: Format Scheme
