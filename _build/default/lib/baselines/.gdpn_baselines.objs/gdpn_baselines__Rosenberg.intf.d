lib/baselines/rosenberg.mli: Scheme
