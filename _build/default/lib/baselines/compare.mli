(** The graceful-degradation comparison (experiment E12): GDPN versus the
    prior-work schemes across the full fault space.

    Two quality dimensions and two cost dimensions per scheme:
    - {e coverage}: fraction of fault sets of size [0..k] (over all nodes,
      devices included) after which a pipeline with I/O connectivity
      survives;
    - {e utilization}: mean used/healthy processors over tolerated fault
      sets — 1.0 is perfect graceful degradation;
    - node count and maximum processor degree.

    The expected shape (paper §2): GDPN achieves coverage 1.0 and
    utilization 1.0 at degree [k+2..k+3]; the Hayes-style array loses
    coverage to port/device faults; the cold-spare scheme loses utilization
    ([n/(n+k-f)]) and pays degree linear in [n]. *)

type row = {
  scheme : string;
  total_nodes : int;
  max_degree : int;
  coverage : float;
  mean_utilization : float;
  min_utilization : float;  (** over tolerated fault sets *)
}

val gdpn_scheme : n:int -> k:int -> Scheme.t
(** The paper's construction wrapped in the scheme interface
    (reconfiguration via {!Gdpn_core.Reconfig}). *)

val evaluate : ?sample:int * int -> Scheme.t -> row
(** Exhaustive over all fault sets of size [0..k] by default;
    [~sample:(trials, seed)] switches to random sampling for large
    instances. *)

val table : ?sample:int * int -> n:int -> k:int -> unit -> row list
(** Rows for GDPN, the Hayes-style array, cold spares, and the
    Diogenes-style bused line, all at the same [(n,k)]. *)

val utilization_vs_faults : Scheme.t -> f:int -> trials:int -> seed:int -> float
(** Mean utilization over random fault sets of size exactly [f] —
    the degradation-curve series. *)

val pp_row : Format.formatter -> row -> unit
val pp_table : Format.formatter -> row list -> unit
