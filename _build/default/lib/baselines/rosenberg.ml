let embed ~n ~k ~faults =
  let sites = n + k in
  let seg_base = sites in
  let input = (2 * sites) - 1 in
  let output = 2 * sites in
  let faulty = Array.make ((2 * sites) + 1) false in
  List.iter
    (fun v -> if v >= 0 && v <= 2 * sites then faulty.(v) <- true)
    faults;
  if faulty.(input) || faulty.(output) then None
  else begin
    let healthy = ref [] in
    for i = sites - 1 downto 0 do
      if not faulty.(i) then healthy := i :: !healthy
    done;
    match !healthy with
    | [] -> None
    | _ :: _ ->
      (* The devices sit at the two line ends, so the compacted stream
         rides every bus segment: one faulty segment anywhere severs it
         (the §2 critique, literally). *)
      let span_ok = ref true in
      for s = 0 to sites - 2 do
        if faulty.(seg_base + s) then span_ok := false
      done;
      if !span_ok then Some !healthy else None
  end

let scheme ~n ~k =
  let sites = n + k in
  {
    Scheme.name = "diogenes-bus";
    total_nodes = (2 * sites) + 1;
    processors = List.init sites Fun.id;
    max_degree = 3;
    n;
    k;
    tolerate =
      (fun faults -> Option.map List.length (embed ~n ~k ~faults));
  }
