(** A Diogenes-style bused reconfigurable line (Rosenberg 1983), as the
    paper's §2 characterises it: "a technique which adds a collection of
    buses in order to accommodate processor faults.  However this approach
    does not tolerate faults in the buses."

    Model: [n + k] processor sites in a line, a bus segment between
    consecutive sites, and single I/O devices at the ends.  Healthy
    processors are compacted onto the line in site order; each hop between
    consecutive healthy processors (or a device and its nearest healthy
    processor) rides every bus segment spanning the gap.  Processor faults
    are therefore tolerated {e gracefully} (all healthy processors used —
    Diogenes' strength), but a single faulty bus segment anywhere in the
    active span severs the stream, and so does a device fault.

    Node ids: sites [0 .. n+k-1], bus segments [n+k .. 2(n+k)-2] (segment
    [i] joins sites [i] and [i+1]), input device [2(n+k)-1], output device
    [2(n+k)].  Degrees: a site touches two segments plus nothing else
    (degree <= 3 with a device); the hardware cost is the bus itself. *)

val scheme : n:int -> k:int -> Scheme.t

val embed : n:int -> k:int -> faults:int list -> int list option
(** Surviving compacted line (site ids, ascending) or [None]. *)
