module Graph = Gdpn_graph.Graph

let graph ~n ~k =
  let procs = n + k in
  let b = Graph.builder (procs + 2) in
  for i = 0 to procs - 1 do
    for j = i + 1 to min (procs - 1) (i + k + 1) do
      Graph.add_edge b i j
    done
  done;
  Graph.add_edge b procs 0;
  Graph.add_edge b (procs + 1) (procs - 1);
  Graph.freeze b

let embed ~n ~k ~faults =
  let procs = n + k in
  let faulty = Array.make (procs + 2) false in
  List.iter
    (fun v -> if v >= 0 && v < procs + 2 then faulty.(v) <- true)
    faults;
  let devices_ok = (not faulty.(procs)) && not faulty.(procs + 1) in
  let ports_ok = (not faulty.(0)) && not faulty.(procs - 1) in
  if not (devices_ok && ports_ok) then None
  else begin
    let healthy = ref [] in
    for i = procs - 1 downto 0 do
      if not faulty.(i) then healthy := i :: !healthy
    done;
    let rec gaps_ok = function
      | a :: (b :: _ as rest) -> b - a <= k + 1 && gaps_ok rest
      | [ _ ] | [] -> true
    in
    if List.length !healthy >= n && gaps_ok !healthy then Some !healthy
    else None
  end

let scheme ~n ~k =
  let g = graph ~n ~k in
  {
    Scheme.name = "hayes-array";
    total_nodes = n + k + 2;
    processors = List.init (n + k) Fun.id;
    max_degree =
      List.fold_left
        (fun m v -> max m (Graph.degree g v))
        0
        (List.init (n + k) Fun.id);
    n;
    k;
    tolerate =
      (fun faults ->
        Option.map List.length (embed ~n ~k ~faults));
  }
