(* Computed-tomography flavoured pipeline (the paper cites pipelined Radon
   transform arrays [1]): projection sums, IIR smoothing, rescaling.  This
   example stresses the §3.4 circulant construction with a clustered burst
   of faults -- the hardest pattern for ring-like networks -- and contrasts
   the outcome with the Hayes-style baseline under the same burst.

   Run with:  dune exec examples/ct_reconstruction.exe *)

open Gdpn_core
open Gdpn_faultsim
module Hayes = Gdpn_baselines.Hayes

let () =
  (* A large instance of the asymptotic family. *)
  let n = 40 and k = 4 in
  let inst = Circulant_family.build ~n ~k in
  Format.printf "network: %a@." Instance.pp inst;
  Format.printf "scanner chain: %s@.@."
    (String.concat " -> " (List.map Stage.name (Stage.ct_reconstruction ())));

  (* A burst: k consecutive ring processors die at once at round 30. *)
  let schedule = Injector.burst inst ~count:k ~at:30 in
  let machine = Machine.create inst in
  let metrics =
    Runner.run ~machine
      ~stages:(Stage.ct_reconstruction ())
      ~source:(Stream.Step { period = 16; high = 1.0 })
      ~frame_length:512 ~rounds:100 ~schedule ()
  in
  Format.printf "burst of %d consecutive ring faults at round 30:@." k;
  Format.printf "  %a@." Runner.pp_metrics metrics;
  assert (not metrics.Runner.pipeline_lost);
  assert (metrics.Runner.mean_utilization = 1.0);
  Format.printf "  re-embedded around the burst; all %d healthy processors in use@.@."
    (Machine.used_processor_count machine);

  (* The same burst position on a Hayes-style array of the same capacity:
     interior bursts are survivable there only while the gap stays within
     its k+1 hop reach, and port faults are fatal. *)
  let burst_interior = [ 10; 11; 12; 13 ] in
  let burst_at_port = [ 0; 1; 2; 3 ] in
  let show label faults =
    match Hayes.embed ~n ~k ~faults with
    | Some path ->
      Format.printf "  hayes %-22s survives, %d processors@." label
        (List.length path)
    | None -> Format.printf "  hayes %-22s STREAM DOWN@." label
  in
  Format.printf "hayes-style array under bursts:@.";
  show "interior burst:" burst_interior;
  show "burst at the input port:" burst_at_port;

  (* Render the post-burst embedding. *)
  let faults = Machine.faults machine in
  match Machine.pipeline machine with
  | Some p ->
    let dot = Instance.to_dot ~faults ~pipeline:p.Pipeline.nodes inst in
    let path = Filename.temp_file "gdpn_ct" ".dot" in
    Gdpn_graph.Dot.save ~path dot;
    Format.printf "@.wrote %s@." path
  | None -> ()
