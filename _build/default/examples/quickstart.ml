(* Quickstart: build a gracefully-degradable pipeline network, break it,
   and watch it re-embed a pipeline that still uses every healthy processor.

   Run with:  dune exec examples/quickstart.exe *)

open Gdpn_core

let show_pipeline inst label = function
  | Reconfig.Pipeline p ->
    let p = Pipeline.normalise inst p in
    Format.printf "%-28s %a  (%d processors)@." label Pipeline.pp p
      (Pipeline.processor_count p)
  | Reconfig.No_pipeline -> Format.printf "%-28s <no pipeline>@." label
  | Reconfig.Gave_up -> Format.printf "%-28s <gave up>@." label

let () =
  (* A 2-fault-tolerant network guaranteeing a 12-processor pipeline.
     Family.build picks the degree-optimal construction from the paper:
     here, an extension tower over the special solution G(6,2). *)
  let inst = Family.build ~n:12 ~k:2 in
  Format.printf "built %a@.@." Instance.pp inst;

  (* Fault-free embedding: all n + k = 14 processors in one pipeline. *)
  show_pipeline inst "no faults:" (Reconfig.solve_list inst ~faults:[]);

  (* Any <= k faults are tolerated -- processors, terminals, anywhere. *)
  let some_processor = List.hd (Instance.processors inst) in
  let some_input = List.hd (Instance.inputs inst) in
  show_pipeline inst "processor fault:"
    (Reconfig.solve_list inst ~faults:[ some_processor ]);
  show_pipeline inst "processor + input fault:"
    (Reconfig.solve_list inst ~faults:[ some_processor; some_input ]);

  (* The pipeline always uses every healthy processor: that is the
     "gracefully degradable" guarantee (no healthy processor is stranded,
     unlike spare-based schemes). *)
  Format.printf "@.verifying every fault set of size <= 2 ...@.";
  let report = Verify.exhaustive inst in
  Format.printf "%a@." Verify.pp_report report;

  (* Export a picture: DOT with the embedded pipeline highlighted. *)
  (match Reconfig.solve_list inst ~faults:[ some_processor ] with
  | Reconfig.Pipeline p ->
    let dot =
      Instance.to_dot ~faults:[ some_processor ] ~pipeline:p.Pipeline.nodes
        inst
    in
    let path = Filename.temp_file "gdpn_quickstart" ".dot" in
    Gdpn_graph.Dot.save ~path dot;
    Format.printf "@.wrote %s (render with `dot -Tpng`)@." path
  | _ -> ())
