(* Capacity planning: choosing k for a deployment.

   The theorems guarantee survival of any k faults; a deployer starts from
   the other end — component reliability and a survival target — and needs
   the smallest k (fewest spare processors, lowest degree) that meets it.
   Because the constructions absorb far more than k random faults (E15),
   Monte Carlo over the real reconfiguration solver recommends smaller k
   than the guarantee-only binomial bound would.

   Run with:  dune exec examples/capacity_planning.exe *)

open Gdpn_core

let () =
  let n = 10 in
  let mission_failure_probs = [ 0.01; 0.03; 0.06 ] in
  let target = 0.95 in
  let trials = 500 in

  Format.printf
    "pipeline length n = %d, survival target %.2f (Wilson 95%% lower bound), \
     %d Monte Carlo trials per candidate k@.@."
    n target trials;

  List.iter
    (fun p ->
      Format.printf "--- per-node failure probability %.2f ---@." p;
      (* What each k actually delivers. *)
      List.iter
        (fun k ->
          match Family.build ~n ~k with
          | exception Family.Unsupported _ -> ()
          | inst ->
            let est =
              Planner.survival_probability
                ~rng:(Random.State.make [| 91; k |])
                ~trials ~node_failure_prob:p inst
            in
            Format.printf
              "  k=%d: measured %a | guarantee-only bound %.4f | max degree %d@."
              k Planner.pp_estimate est
              (Planner.guarantee_only_bound ~n ~k ~node_failure_prob:p)
              (Instance.max_processor_degree inst))
        [ 1; 2; 3 ];
      (match
         Planner.recommend_k
           ~rng:(Random.State.make [| 92 |])
           ~trials ~n ~node_failure_prob:p ~target ()
       with
      | Some (k, est) ->
        Format.printf "  -> recommended k = %d (%a)@." k Planner.pp_estimate est
      | None -> Format.printf "  -> no k <= 8 certifies the target@.");
      Format.printf "@.")
    mission_failure_probs;

  Format.printf
    "note how the measured survival beats the guarantee-only bound: random \
     faults rarely form the adversarial patterns the worst case needs, and \
     the solver exploits that (experiment E15).@."
