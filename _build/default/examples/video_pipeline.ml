(* The paper's opening motivation: asymmetric video compression on a
   parallel pipeline with real-time constraints (§1).  An encoder chain
   (subsample, rescale, FIR low-pass, quantize, run-length coding) streams
   frames through a gracefully-degradable network while processors and even
   I/O terminals fail mid-stream.

   Run with:  dune exec examples/video_pipeline.exe *)

open Gdpn_core
open Gdpn_faultsim

(* The encoder front end from the paper's motivation plus a deep analysis
   filter bank: 26 stages, more than the network's 13 processors, so every
   processor carries real work and losing one visibly costs bandwidth. *)
let encoder = Stage.video_codec () @ Stage.fir_bank 21

let run_scenario ~label ~schedule inst =
  let machine = Machine.create inst in
  let metrics =
    Runner.run ~machine ~stages:encoder
      ~source:(Stream.Sine_mixture [ (0.013, 1.0); (0.041, 0.4); (0.11, 0.15) ])
      ~frame_length:512 ~rounds:120 ~schedule ()
  in
  Format.printf "%-26s %a@." label Runner.pp_metrics metrics;
  metrics

let () =
  let inst = Family.build ~n:10 ~k:3 in
  Format.printf "network: %a@." Instance.pp inst;
  Format.printf "encoder (%d stages): %s -> [%d-tap filter bank]@.@."
    (List.length encoder)
    (String.concat " -> " (List.map Stage.name (Stage.video_codec ())))
    (List.length (Stage.fir_bank 21));

  (* Scenario 1: clean run. *)
  let clean = run_scenario ~label:"clean run:" ~schedule:[] inst in

  (* Scenario 2: three random processor faults spread over the stream. *)
  let rng = Stream.Prng.create 2024 in
  let random_schedule =
    Injector.random_processors_only ~rng inst ~count:3 ~rounds:120
  in
  let faulty =
    run_scenario ~label:"3 processor faults:" ~schedule:random_schedule inst
  in

  (* Scenario 3: adversarial -- the faults target input terminals, the case
     unlabeled-graph schemes cannot express (paper §2). *)
  let adversarial = Injector.adversarial_terminals inst ~count:3 ~at:40 in
  let io_hit =
    run_scenario ~label:"3 input terminals die:" ~schedule:adversarial inst
  in

  Format.printf "@.observations:@.";
  Format.printf "  output checksums identical: %b (values never depend on the mapping)@."
    (clean.Runner.output_checksum = faulty.Runner.output_checksum
    && clean.Runner.output_checksum = io_hit.Runner.output_checksum);
  Format.printf "  utilization stayed 1.0 under faults: %b (graceful degradation)@."
    (faulty.Runner.mean_utilization = 1.0
    && io_hit.Runner.mean_utilization = 1.0);
  Format.printf
    "  throughput clean %.3f vs faulty %.3f: losing processors costs \
     bandwidth but never strands a healthy one@."
    clean.Runner.throughput faulty.Runner.throughput
