(* Hough/Radon transform pipeline (the paper cites pipelined Radon-transform
   arrays for image and CT processing [1]).  A stream of images flows
   through a gracefully-degradable network whose processors each compute
   one shear projection of the discrete Radon transform; the collected
   sinogram feeds line detection (Hough peaks) and unfiltered
   back-projection.  Faults strike mid-stream; detection results never
   change, and the mapping keeps every healthy processor busy.

   Run with:  dune exec examples/hough_pipeline.exe *)

open Gdpn_core
open Gdpn_faultsim

let slopes = [ -3; -2; -1; 0; 1; 2; 3 ]

(* One image per stream index: the phantom plus two planted lines whose
   parameters drift with the index. *)
let scene index =
  let img = Image.phantom ~size:48 in
  Image.add_line img ~slope:1 ~intercept:(4 + (index mod 5)) ~value:2.0;
  Image.add_line img ~slope:(-1) ~intercept:46 ~value:2.0;
  img

(* The per-image work, independent of the network mapping. *)
let analyse img =
  let sino = Image.sinogram img ~slopes in
  let peaks = Image.hough_peaks img ~slopes ~threshold:80.0 in
  let recon =
    Image.back_project ~width:img.Image.width ~height:img.Image.height ~slopes
      sino
  in
  (peaks, Image.total recon)

(* Timing model: each projection costs width*height work units; the
   pipeline is bound by its busiest processor, i.e. by how many of the
   |slopes| projections share one node. *)
let frame_work ~processors img =
  let per_projection = img.Image.width * img.Image.height in
  let blocks = Runner.stage_blocks ~stages:slopes ~processors in
  List.fold_left
    (fun m block -> max m (List.length block * per_projection))
    0 blocks

let () =
  let inst = Family.build ~n:7 ~k:3 in
  Format.printf "network: %a@." Instance.pp inst;
  Format.printf "radon slopes per frame: %d, image 48x48@.@."
    (List.length slopes);
  let machine = Machine.create inst in
  let rng = Stream.Prng.create 77 in
  let schedule =
    Injector.random_processors_only ~rng inst ~count:3 ~rounds:40
  in
  let total_work = ref 0 in
  let all_peaks = ref [] in
  let recon_sum = ref 0.0 in
  for round = 0 to 39 do
    ignore (Injector.apply_due schedule ~round machine);
    let img = scene round in
    let peaks, recon_total = analyse img in
    all_peaks := peaks :: !all_peaks;
    recon_sum := !recon_sum +. recon_total;
    total_work :=
      !total_work
      + frame_work ~processors:(Machine.used_processor_count machine) img
  done;
  Format.printf "frames: 40, faults injected: %d, local repairs: %d@."
    (Machine.fault_count machine)
    (Machine.local_repair_count machine);
  Format.printf "healthy processors still in use: %d of %d healthy@."
    (Machine.used_processor_count machine)
    (Machine.healthy_processor_count machine);
  assert (Machine.utilization machine = 1.0);
  Format.printf "total work units: %d@." !total_work;

  (* Detection on the final frame: both planted lines must be among the
     peaks regardless of the faults. *)
  let last_peaks = List.hd !all_peaks in
  let found (s, b) = List.mem (s, b) last_peaks in
  Format.printf "planted line (1, %d) detected: %b@." (4 + (39 mod 5))
    (found (1, 4 + (39 mod 5)));
  Format.printf "planted line (-1, 46) detected: %b@." (found (-1, 46));
  Format.printf "reconstruction mass accumulated: %.1f@." !recon_sum;

  (* The same stream on a fault-free machine gives identical analysis. *)
  let clean_peaks, _ = analyse (scene 39) in
  Format.printf "analysis identical to fault-free run: %b@."
    (clean_peaks = last_peaks)
