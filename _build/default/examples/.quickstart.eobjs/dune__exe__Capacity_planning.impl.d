examples/capacity_planning.ml: Family Format Gdpn_core Instance List Planner Random
