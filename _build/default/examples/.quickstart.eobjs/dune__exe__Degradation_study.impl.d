examples/degradation_study.ml: Format Gdpn_baselines Gdpn_core List Random
