examples/realtime_latency.ml: Array Des Family Format Gantt Gdpn_core Gdpn_faultsim Gdpn_graph Instance List Machine Pipeline Reconfig Repair Stage Stats
