examples/custom_instance.ml: Certify Format Gdpn_core Instance List Serial String Verify
