examples/ct_reconstruction.ml: Circulant_family Filename Format Gdpn_baselines Gdpn_core Gdpn_faultsim Gdpn_graph Injector Instance List Machine Pipeline Runner Stage Stream String
