examples/degradation_study.mli:
