examples/video_pipeline.ml: Family Format Gdpn_core Gdpn_faultsim Injector Instance List Machine Runner Stage Stream String
