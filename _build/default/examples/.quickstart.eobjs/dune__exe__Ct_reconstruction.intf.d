examples/ct_reconstruction.mli:
