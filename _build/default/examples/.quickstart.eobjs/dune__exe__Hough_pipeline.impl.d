examples/hough_pipeline.ml: Family Format Gdpn_core Gdpn_faultsim Image Injector Instance List Machine Runner Stream
