examples/realtime_latency.mli:
