examples/hough_pipeline.mli:
