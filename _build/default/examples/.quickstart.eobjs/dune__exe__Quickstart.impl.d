examples/quickstart.ml: Family Filename Format Gdpn_core Gdpn_graph Instance List Pipeline Reconfig Verify
