examples/quickstart.mli:
