(* Bring your own graph: define a candidate solution graph in the textual
   format, verify it, measure its real tolerance, and emit a witness
   certificate a third party can check without trusting any solver.

   The candidate here is G(1,2) with one extra (useless) edge re-routed —
   a realistic "I designed my own network, is it actually 2-gracefully-
   degradable?" workflow.

   Run with:  dune exec examples/custom_instance.exe *)

open Gdpn_core

let my_network = {|
# A hand-written candidate: 3 processors (clique), 3 inputs, 3 outputs.
gdpn 1
n 1
k 2
name my-custom-network
kinds PPPIIIOOO
edge 0 1
edge 0 2
edge 1 2
edge 0 3
edge 1 4
edge 2 5
edge 0 6
edge 1 7
edge 2 8
|}

let broken_network = {|
# Same, but the designer forgot the 1-2 processor link.
gdpn 1
n 1
k 2
name my-broken-network
kinds PPPIIIOOO
edge 0 1
edge 0 2
edge 0 3
edge 1 4
edge 2 5
edge 0 6
edge 1 7
edge 2 8
|}

let inspect text =
  match Serial.of_string text with
  | Error e -> Format.printf "parse error: %s@." e
  | Ok inst ->
    Format.printf "%a@." Instance.pp inst;
    Format.printf "  standard: %b, node-optimal: %b@."
      (Instance.is_standard inst)
      (Instance.is_node_optimal inst);
    let report = Verify.exhaustive inst in
    Format.printf "  verification: %a@." Verify.pp_report report;
    Format.printf "  measured tolerance: %d (designed %d)@."
      (Verify.tolerance inst) inst.Instance.k;
    (match Verify.breaking_fault_set inst with
    | Some w ->
      Format.printf "  smallest breaking fault set: {%s}@."
        (String.concat "," (List.map string_of_int w))
    | None -> ());
    if Verify.is_k_gd report then begin
      let cert = Certify.generate inst in
      match Certify.check inst cert with
      | Ok n ->
        Format.printf
          "  certificate: %d bytes covering %d fault sets, re-checked \
           without the solver@."
          (String.length cert) n
      | Error e -> Format.printf "  certificate check failed: %s@." e
    end;
    Format.printf "@."

let () =
  Format.printf "=== a correct hand-written network ===@.";
  inspect my_network;
  Format.printf "=== the same network with a missing processor link ===@.";
  inspect broken_network;
  Format.printf
    "the broken variant fails verification and its measured tolerance drops \
     below the claimed k — exactly what `gdp check` reports for user \
     files.@."
