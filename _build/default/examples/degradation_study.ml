(* Experiment E12: the graceful-degradation study.  Quantifies the paper's
   §2 critique of prior work across three schemes at the same (n, k):

     - coverage: which fault sets keep the stream alive at all;
     - utilization: how many healthy processors the surviving pipeline uses;
     - hardware cost: node count and maximum processor degree.

   Run with:  dune exec examples/degradation_study.exe *)

module Compare = Gdpn_baselines.Compare
module Hayes = Gdpn_baselines.Hayes
module Spares = Gdpn_baselines.Spares
module Rosenberg = Gdpn_baselines.Rosenberg
module Survival = Gdpn_baselines.Survival

let () =
  let n = 8 and k = 2 in
  Format.printf "=== scheme comparison at n = %d, k = %d (exhaustive over all \
                 fault sets of size <= k) ===@.@." n k;
  let rows = Compare.table ~n ~k () in
  Format.printf "%a@." Compare.pp_table rows;

  Format.printf "=== utilization vs fault count (mean over 2000 random fault \
                 sets; 0 when the stream is down) ===@.@.";
  let gdpn = Compare.gdpn_scheme ~n ~k in
  let hayes = Hayes.scheme ~n ~k in
  let spares = Spares.scheme ~n ~k in
  let diogenes = Rosenberg.scheme ~n ~k in
  Format.printf "%-4s %-8s %-8s %-8s %-8s@." "f" "gdpn" "hayes" "spares"
    "diogenes";
  for f = 0 to k do
    let at s = Compare.utilization_vs_faults s ~f ~trials:2000 ~seed:(f + 1) in
    Format.printf "%-4d %-8.4f %-8.4f %-8.4f %-8.4f@." f (at gdpn) (at hayes)
      (at spares) (at diogenes)
  done;

  Format.printf "@.=== beyond-spec survival: random faults until the stream \
                 dies (E15, 300 trials) ===@.@.";
  let rng () = Random.State.make [| 404 |] in
  Format.printf "%-12s %a@." "gdpn" Survival.pp_stats
    (Survival.instance_lifetime ~rng:(rng ()) ~trials:300
       (Gdpn_core.Family.build ~n ~k));
  List.iter
    (fun s ->
      Format.printf "%-12s %a@." s.Gdpn_baselines.Scheme.name Survival.pp_stats
        (Survival.scheme_lifetime ~rng:(rng ()) ~trials:300 s))
    [ hayes; spares; diogenes ];

  Format.printf "@.=== hardware cost growth (max processor degree) ===@.@.";
  Format.printf "%-6s %-6s %-8s %-8s@." "n" "gdpn" "hayes" "spares";
  List.iter
    (fun n ->
      let g = Compare.gdpn_scheme ~n ~k in
      let h = Hayes.scheme ~n ~k in
      let s = Spares.scheme ~n ~k in
      Format.printf "%-6d %-6d %-8d %-8d@." n g.Gdpn_baselines.Scheme.max_degree
        h.Gdpn_baselines.Scheme.max_degree s.Gdpn_baselines.Scheme.max_degree)
    [ 4; 8; 16; 32 ];
  Format.printf
    "@.gdpn's degree is the provably optimal k+2 (k+3 at the parity \
     exceptions); spares pay degree linear in n, hayes pays 2(k+1).@."
