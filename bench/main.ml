(* The benchmark & table harness.

   Running `dune exec bench/main.exe` regenerates, in order:

   1. the paper's result tables — the Theorem 3.13/3.15/3.16 degree tables
      (E5-E7), the §3.2/§3.4 optimality summary (E1-E3, E9), the prior-work
      comparison (E12) and the utilization-degradation curve — each with a
      live verification column; and
   2. the Bechamel microbenchmarks B1-B7 (construction cost,
      reconfiguration latency across families, verification throughput,
      simulator rounds, baseline reconfiguration, and the
      constructive-vs-generic solver ablation).

   The paper itself reports no absolute performance numbers (its results are
   constructions and proofs), so the tables carry the reproduction and the
   microbenchmarks document this implementation's costs. *)

open Bechamel
(* Toolkit is referenced qualified to avoid shadowing Gdpn_core.Instance. *)
open Gdpn_core
module Compare = Gdpn_baselines.Compare
module Hayes = Gdpn_baselines.Hayes
module Spares = Gdpn_baselines.Spares
module Faultsim = Gdpn_faultsim

let pf = Format.printf

(* ------------------------------------------------------------------ *)
(* Part 1: tables                                                      *)
(* ------------------------------------------------------------------ *)

(* Sampled verification takes an explicit per-row seed, logged in the tag.
   Seeding from instance parameters (the old [| order inst |]) silently
   correlated the fault-sample sequences of same-order instances — every
   row of a table would re-check the same "random" fault sets. *)
let verified_tag inst ~seed ~exhaustive_up_to =
  if Instance.order inst <= exhaustive_up_to then
    if Verify.is_k_gd (Verify.exhaustive inst) then "exhaustive"
    else "FAILED"
  else begin
    let r =
      Verify.sampled ~rng:(Random.State.make [| seed |]) ~trials:2000 inst
    in
    if Verify.is_k_gd r then Printf.sprintf "sampled(2000)#%d" seed
    else Printf.sprintf "FAILED#%d" seed
  end

let degree_table k n_max =
  pf "@.--- Table: theorem %s — degree-optimal solutions for k = %d ---@."
    (match k with 1 -> "3.13" | 2 -> "3.15" | 3 -> "3.16" | _ -> "3.17")
    k;
  pf "%-4s %-10s %-10s %-18s %-30s %s@." "n" "max-deg" "lower-bnd" "verified"
    "construction" "nodes";
  for n = 1 to n_max do
    let inst = Family.build ~n ~k in
    pf "%-4d %-10d %-10d %-18s %-30s %d@." n
      (Instance.max_processor_degree inst)
      (Bounds.degree_lower_bound ~n ~k)
      (verified_tag inst ~seed:((1000 * k) + n) ~exhaustive_up_to:24)
      inst.Instance.name (Instance.order inst)
  done

let circulant_table () =
  pf "@.--- Table: §3.4 circulant family (Theorem 3.17) ---@.";
  pf "%-10s %-8s %-10s %-10s %-18s@." "(n,k)" "nodes" "max-deg" "lower-bnd"
    "verified";
  List.iter
    (fun (n, k) ->
      let inst = Circulant_family.build ~n ~k in
      pf "(%3d,%2d)   %-8d %-10d %-10d %-18s@." n k (Instance.order inst)
        (Instance.max_processor_degree inst)
        (Bounds.degree_lower_bound ~n ~k)
        (verified_tag inst ~seed:((100 * n) + k) ~exhaustive_up_to:37))
    [ (22, 4); (26, 5); (27, 5); (40, 4); (50, 6); (60, 7); (100, 8) ]

let impossibility_table () =
  pf "@.--- Table: Lemma 3.14 machine check (E8) ---@.";
  let r = Impossibility.lemma_3_14 () in
  pf "degree-(4,3^6) graphs examined: %d@." r.Impossibility.graphs_examined;
  pf "(graph, terminal-assignment) candidates: %d@."
    r.Impossibility.assignments_examined;
  pf "2-gracefully-degradable solutions found: %d (paper: 0)@."
    r.Impossibility.solutions_found

let comparison_table () =
  pf "@.--- Table: prior-work comparison at (n,k) = (8,2), exhaustive (E12) ---@.";
  List.iter
    (fun row -> pf "%a@." Compare.pp_row row)
    (Compare.table ~n:8 ~k:2 ());
  pf "@.--- Series: utilization vs fault count (2000 random fault sets per point) ---@.";
  let gdpn = Compare.gdpn_scheme ~n:8 ~k:2 in
  let hayes = Hayes.scheme ~n:8 ~k:2 in
  let spares = Spares.scheme ~n:8 ~k:2 in
  pf "%-4s %-8s %-8s %-8s@." "f" "gdpn" "hayes" "spares";
  for f = 0 to 2 do
    let at s = Compare.utilization_vs_faults s ~f ~trials:2000 ~seed:(f + 1) in
    pf "%-4d %-8.4f %-8.4f %-8.4f@." f (at gdpn) (at hayes) (at spares)
  done

let link_fault_table () =
  pf "@.--- Table: link-fault survey — graceful vs degraded (E13) ---@.";
  pf "%-10s %s@." "instance" "result";
  List.iter
    (fun (label, inst) ->
      pf "%-10s %a@." label Link_faults.pp_survey
        (Link_faults.survey_exhaustive inst))
    [
      ("G(1,2)", Small_n.g1 ~k:2);
      ("G(2,2)", Small_n.g2 ~k:2);
      ("G(3,2)", Small_n.g3 ~k:2);
      ("G(6,2)", Special.g62 ());
      ("G(4,3)", Special.g43 ());
    ]

let tolerance_table () =
  pf "@.--- Table: measured exact fault tolerance (breaking sets at k+1) ---@.";
  pf "%-22s %-10s %-10s %s@." "instance" "designed" "measured"
    "smallest breaking set";
  List.iter
    (fun inst ->
      let witness =
        match Verify.breaking_fault_set inst with
        | Some w -> "{" ^ String.concat "," (List.map string_of_int w) ^ "}"
        | None -> "-"
      in
      pf "%-22s %-10d %-10d %s@." inst.Instance.name inst.Instance.k
        (Verify.tolerance inst) witness)
    [
      Small_n.g1 ~k:2; Small_n.g2 ~k:2; Small_n.g3 ~k:2; Special.g62 ();
      Special.g43 ();
    ]

let survival_table () =
  pf "@.--- Table: beyond-spec survival at (n,k) = (8,2) (E15, 200 trials) ---@.";
  let rng () = Random.State.make [| 2026 |] in
  pf "%-14s %a@." "gdpn" Gdpn_baselines.Survival.pp_stats
    (Gdpn_baselines.Survival.instance_lifetime ~rng:(rng ()) ~trials:200
       (Family.build ~n:8 ~k:2));
  List.iter
    (fun s ->
      pf "%-14s %a@." s.Gdpn_baselines.Scheme.name
        Gdpn_baselines.Survival.pp_stats
        (Gdpn_baselines.Survival.scheme_lifetime ~rng:(rng ()) ~trials:200 s))
    [
      Hayes.scheme ~n:8 ~k:2; Spares.scheme ~n:8 ~k:2;
      Gdpn_baselines.Rosenberg.scheme ~n:8 ~k:2;
    ]

let layout_table () =
  pf "@.--- Table: ring-layout wire costs (circulant family, natural layout) ---@.";
  pf "%-10s %-12s %-12s %-14s@." "(n,k)" "max wire" "total wire"
    "pipeline wire";
  List.iter
    (fun (n, k) ->
      let inst = Circulant_family.build ~n ~k in
      let l = Layout.circulant_natural inst in
      let pipe_wire =
        match Reconfig.solve_list inst ~faults:[] with
        | Reconfig.Pipeline p -> Layout.pipeline_wirelength l p
        | _ -> nan
      in
      pf "(%3d,%2d)   %-12.4f %-12.4f %-14.4f@." n k
        (Layout.max_edge_length l inst.Instance.graph)
        (Layout.total_edge_length l inst.Instance.graph)
        pipe_wire)
    [ (22, 4); (40, 4); (26, 5); (27, 5); (50, 6) ];
  pf "(odd k pays the bisector wires; odd n keeps them to a matching)@."

let attack_table () =
  pf "@.--- Table: adversarial reconfiguration cost, generic solver \
      (expansions; budget-capped at 30k) ---@.";
  let inst = Circulant_family.build ~n:40 ~k:4 in
  let rng = Random.State.make [| 2027 |] in
  let mean, worst =
    Attack.random_baseline ~rng ~trials:60 ~budget:30_000 inst
  in
  let adv = Attack.worst_case ~rng ~restarts:1 ~budget:30_000 inst in
  pf "G(40,4): random mean=%d, random worst=%d, hill-climbed=%d \
      (set {%s}, %d probes)@."
    mean worst adv.Attack.expansions
    (String.concat "," (List.map string_of_int adv.Attack.faults))
    adv.Attack.evaluations;
  (* The constructive solver on the adversarial set, for contrast. *)
  let expansions = ref 0 in
  (match
     Reconfig.solve_generic ~budget:30_000 ~expansions inst
       ~faults:(Gdpn_graph.Bitset.of_list (Instance.order inst)
                  adv.Attack.faults)
   with
  | _ -> ());
  (match Reconfig.solve_list inst ~faults:adv.Attack.faults with
  | Reconfig.Pipeline _ ->
    pf "constructive solver tolerates the adversarial set (strategy \
        dispatch); generic needed %d expansions@."
      !expansions
  | _ -> pf "UNEXPECTED: constructive solver failed@.")

let diameter_table () =
  pf "@.--- Table: network diameter (hop latency bound) at k = 2 ---@.";
  pf "%-6s %-8s %-10s %-10s@." "n" "gdpn" "hayes" "spares";
  List.iter
    (fun n ->
      let dia g =
        match
          Gdpn_graph.Connectivity.diameter g
            ~alive:(Gdpn_graph.Bitset.full (Gdpn_graph.Graph.order g))
        with
        | Some d -> string_of_int d
        | None -> "-"
      in
      pf "%-6d %-8s %-10s %-10s@." n
        (dia (Family.build ~n ~k:2).Instance.graph)
        (dia (Hayes.graph ~n ~k:2))
        (dia (Gdpn_baselines.Spares.graph ~n ~k:2)))
    [ 4; 8; 16; 32 ];
  pf "(spares buy small diameter with degree linear in n; gdpn and hayes \
      grow linearly at constant degree)@."

let tables () =
  degree_table 1 14;
  degree_table 2 14;
  degree_table 3 14;
  circulant_table ();
  impossibility_table ();
  comparison_table ();
  link_fault_table ();
  tolerance_table ();
  survival_table ();
  layout_table ();
  attack_table ();
  diameter_table ()

(* ------------------------------------------------------------------ *)
(* Part 2: microbenchmarks                                             *)
(* ------------------------------------------------------------------ *)

let fault_sets inst ~seed ~count =
  let rng = Random.State.make [| seed |] in
  Array.init 32 (fun _ ->
      Array.to_list
        (Gdpn_graph.Combinat.sample rng (Instance.order inst) count))

let bench_solve name inst ~seed =
  let sets = fault_sets inst ~seed ~count:inst.Instance.k in
  let i = ref 0 in
  Test.make ~name
    (Staged.stage (fun () ->
         let faults = sets.(!i land 31) in
         incr i;
         Sys.opaque_identity (Reconfig.solve_list inst ~faults)))

let bench_solve_generic name inst ~seed =
  let sets = fault_sets inst ~seed ~count:inst.Instance.k in
  let order = Instance.order inst in
  let i = ref 0 in
  Test.make ~name
    (Staged.stage (fun () ->
         let faults = Gdpn_graph.Bitset.of_list order (sets.(!i land 31)) in
         incr i;
         Sys.opaque_identity (Reconfig.solve_generic inst ~faults)))

let b1_construction =
  Test.make_grouped ~name:"B1-construction"
    [
      Test.make ~name:"family n=12 k=2"
        (Staged.stage (fun () -> Sys.opaque_identity (Family.build ~n:12 ~k:2)));
      Test.make ~name:"family n=13 k=3"
        (Staged.stage (fun () -> Sys.opaque_identity (Family.build ~n:13 ~k:3)));
      Test.make ~name:"circulant n=40 k=4"
        (Staged.stage (fun () ->
             Sys.opaque_identity (Circulant_family.build ~n:40 ~k:4)));
      Test.make ~name:"circulant n=200 k=6"
        (Staged.stage (fun () ->
             Sys.opaque_identity (Circulant_family.build ~n:200 ~k:6)));
    ]

let b2_reconfig_small_k =
  Test.make_grouped ~name:"B2-reconfig-small-k"
    [
      bench_solve "G(1,8) clique scan" (Small_n.g1 ~k:8) ~seed:1;
      bench_solve "G(3,6) generic" (Small_n.g3 ~k:6) ~seed:2;
      bench_solve "ext tower n=31 k=2" (Family.build ~n:31 ~k:2) ~seed:3;
      bench_solve "ext tower n=61 k=2" (Family.build ~n:61 ~k:2) ~seed:4;
    ]

let b3_reconfig_circulant =
  Test.make_grouped ~name:"B3-reconfig-circulant"
    [
      bench_solve "G(22,4)" (Circulant_family.build ~n:22 ~k:4) ~seed:5;
      bench_solve "G(40,4)" (Circulant_family.build ~n:40 ~k:4) ~seed:6;
      bench_solve "G(100,6)" (Circulant_family.build ~n:100 ~k:6) ~seed:7;
      bench_solve "G(200,6)" (Circulant_family.build ~n:200 ~k:6) ~seed:8;
    ]

let b4_verification =
  let g62 = Special.g62 () in
  let g43 = Special.g43 () in
  Test.make_grouped ~name:"B4-verification"
    [
      Test.make ~name:"exhaustive G(6,2): 106 fault sets"
        (Staged.stage (fun () -> Sys.opaque_identity (Verify.exhaustive g62)));
      Test.make ~name:"exhaustive G(4,3): 576 fault sets"
        (Staged.stage (fun () -> Sys.opaque_identity (Verify.exhaustive g43)));
    ]

let b5_simulator =
  let inst = Family.build ~n:9 ~k:2 in
  let stages = Faultsim.Stage.video_codec () in
  Test.make_grouped ~name:"B5-simulator"
    [
      Test.make ~name:"video codec, 10 rounds, no faults"
        (Staged.stage (fun () ->
             let machine = Faultsim.Machine.create inst in
             Sys.opaque_identity
               (Faultsim.Runner.run ~machine ~stages
                  ~source:(Faultsim.Stream.Sine_mixture [ (0.02, 1.0) ])
                  ~frame_length:128 ~rounds:10 ())));
      Test.make ~name:"video codec, 10 rounds, 2 faults"
        (Staged.stage (fun () ->
             let machine = Faultsim.Machine.create inst in
             let rng = Faultsim.Stream.Prng.create 3 in
             let schedule =
               Faultsim.Injector.random_processors_only ~rng inst ~count:2
                 ~rounds:10
             in
             Sys.opaque_identity
               (Faultsim.Runner.run ~machine ~stages
                  ~source:(Faultsim.Stream.Sine_mixture [ (0.02, 1.0) ])
                  ~frame_length:128 ~rounds:10 ~schedule ())));
    ]

let b6_baselines =
  let rng = Random.State.make [| 9 |] in
  let sets =
    Array.init 32 (fun _ -> Array.to_list (Gdpn_graph.Combinat.sample rng 34 2))
  in
  let i = ref 0 in
  let hayes = Hayes.scheme ~n:32 ~k:2 in
  let spares = Spares.scheme ~n:32 ~k:2 in
  Test.make_grouped ~name:"B6-baselines"
    [
      Test.make ~name:"hayes embed n=32 k=2"
        (Staged.stage (fun () ->
             let f = sets.(!i land 31) in
             incr i;
             Sys.opaque_identity (hayes.Gdpn_baselines.Scheme.tolerate f)));
      Test.make ~name:"spares tolerate n=32 k=2"
        (Staged.stage (fun () ->
             let f = sets.(!i land 31) in
             incr i;
             Sys.opaque_identity (spares.Gdpn_baselines.Scheme.tolerate f)));
    ]

let b7_ablation =
  let circ = Circulant_family.build ~n:40 ~k:4 in
  let ext = Family.build ~n:31 ~k:2 in
  Test.make_grouped ~name:"B7-ablation-constructive-vs-generic"
    [
      bench_solve "circulant G(40,4) constructive" circ ~seed:10;
      bench_solve_generic "circulant G(40,4) generic" circ ~seed:10;
      bench_solve "extension n=31 constructive" ext ~seed:11;
      bench_solve_generic "extension n=31 generic" ext ~seed:11;
    ]

let b8_repair =
  (* Local splice vs full reconfiguration after one internal-processor
     fault on the same instance and embedding. *)
  let inst = Family.build ~n:31 ~k:2 in
  let order = Instance.order inst in
  let clean = Gdpn_graph.Bitset.create order in
  let pipeline =
    match Reconfig.solve inst ~faults:clean with
    | Reconfig.Pipeline p -> Pipeline.normalise inst p
    | _ -> failwith "bench setup: fault-free pipeline"
  in
  (* Internal processors along the path (skip terminals + endpoints). *)
  let internal =
    match pipeline.Pipeline.nodes with
    | _ :: rest ->
      Array.of_list (List.filteri (fun i _ -> i > 0 && i < List.length rest - 2) rest)
    | [] -> [||]
  in
  let i = ref 0 in
  Test.make_grouped ~name:"B8-repair-vs-resolve"
    [
      Test.make ~name:"local repair (splice path)"
        (Staged.stage (fun () ->
             let v = internal.(!i mod Array.length internal) in
             incr i;
             let faults = Gdpn_graph.Bitset.create order in
             Gdpn_graph.Bitset.add faults v;
             Sys.opaque_identity
               (Repair.repair inst ~current:pipeline ~faults ~failed:v)));
      Test.make ~name:"full reconfiguration"
        (Staged.stage (fun () ->
             let v = internal.(!i mod Array.length internal) in
             incr i;
             let faults = Gdpn_graph.Bitset.create order in
             Gdpn_graph.Bitset.add faults v;
             Sys.opaque_identity (Reconfig.solve inst ~faults)));
    ]

let b9_link_faults =
  let inst = Special.g62 () in
  let edges = Array.of_list (Gdpn_graph.Graph.edges inst.Instance.graph) in
  let i = ref 0 in
  Test.make_grouped ~name:"B9-link-faults"
    [
      Test.make ~name:"mixed solve, one link fault on G(6,2)"
        (Staged.stage (fun () ->
             let u, v = edges.(!i mod Array.length edges) in
             incr i;
             Sys.opaque_identity
               (Link_faults.solve inst ~faults:[ Link_faults.Link (u, v) ])));
      Test.make ~name:"exhaustive mixed survey of G(1,2)"
        (Staged.stage
           (let g12 = Small_n.g1 ~k:2 in
            fun () -> Sys.opaque_identity (Link_faults.survey_exhaustive g12)));
    ]

let b10_des =
  let inst = Family.build ~n:9 ~k:2 in
  let stages = Faultsim.Stage.fir_bank 8 in
  let cfg = { Faultsim.Des.default_config with arrival_period = 4000 } in
  let proc = List.nth (Instance.processors inst) 3 in
  Test.make_grouped ~name:"B10-discrete-event"
    [
      Test.make ~name:"60 tokens, no faults"
        (Staged.stage (fun () ->
             Sys.opaque_identity
               (Faultsim.Des.simulate
                  ~machine:(Faultsim.Machine.create inst)
                  ~stages ~config:cfg ~faults:[] ~tokens:60)));
      Test.make ~name:"60 tokens, one mid-stream fault"
        (Staged.stage (fun () ->
             Sys.opaque_identity
               (Faultsim.Des.simulate
                  ~machine:(Faultsim.Machine.create inst)
                  ~stages ~config:cfg
                  ~faults:[ (100_000, proc) ]
                  ~tokens:60)));
    ]

let b11_engine =
  let module Engine = Gdpn_engine.Engine in
  (* Reconfiguration latency: the same 32 fault sets cycled, once through
     the engine's plan cache (everything after the first lap is a lookup or
     a splice) and once with the cache bypassed (ctx reuse only, full
     solver every call). *)
  let inst = Circulant_family.build ~n:40 ~k:4 in
  let order = Instance.order inst in
  let masks =
    Array.map
      (Gdpn_graph.Bitset.of_list order)
      (fault_sets inst ~seed:12 ~count:inst.Instance.k)
  in
  let cached_engine = Engine.create inst in
  let uncached_engine = Engine.create inst in
  let i = ref 0 in
  (* Verification throughput: the same exhaustive fault space (G(4,3), 576
     fault sets) on one domain vs the default domain count.  On a
     single-core host the multi-domain row measures pure sharding overhead;
     with real cores it measures the speedup.  Reports are identical either
     way (see test_engine). *)
  let g43 = Special.g43 () in
  let nd = Stdlib.max 2 (Engine.Parallel.default_domains ()) in
  Test.make_grouped ~name:"B11-engine"
    [
      Test.make ~name:"G(40,4) solve, plan cache"
        (Staged.stage (fun () ->
             let faults = masks.(!i land 31) in
             incr i;
             Sys.opaque_identity (Engine.solve cached_engine ~faults)));
      Test.make ~name:"G(40,4) solve, uncached"
        (Staged.stage (fun () ->
             let faults = masks.(!i land 31) in
             incr i;
             Sys.opaque_identity
               (Engine.solve ~cache:false uncached_engine ~faults)));
      Test.make ~name:"G(4,3) exhaustive verify, 1 domain"
        (Staged.stage (fun () ->
             Sys.opaque_identity
               (Engine.Parallel.verify_exhaustive ~domains:1 g43)));
      Test.make
        ~name:(Printf.sprintf "G(4,3) exhaustive verify, %d domains" nd)
        (Staged.stage (fun () ->
             Sys.opaque_identity
               (Engine.Parallel.verify_exhaustive ~domains:nd g43)));
    ]

let all_benches =
  Test.make_grouped ~name:"gdpn"
    [
      b1_construction;
      b2_reconfig_small_k;
      b3_reconfig_circulant;
      b4_verification;
      b5_simulator;
      b6_baselines;
      b7_ablation;
      b8_repair;
      b9_link_faults;
      b10_des;
      b11_engine;
    ]

let run_benchmarks () =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None
      ~stabilize:false ()
  in
  let raw = Benchmark.all cfg instances all_benches in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name r acc -> (name, r) :: acc) results [] in
  let rows = List.sort (fun (a, _) (b, _) -> compare a b) rows in
  pf "@.--- Microbenchmarks (monotonic clock per run) ---@.";
  pf "%-64s %14s %8s@." "benchmark" "time/run" "r²";
  List.iter
    (fun (name, r) ->
      let time =
        match Analyze.OLS.estimates r with
        | Some (t :: _) ->
          if t > 1e9 then Printf.sprintf "%.3f s" (t /. 1e9)
          else if t > 1e6 then Printf.sprintf "%.3f ms" (t /. 1e6)
          else if t > 1e3 then Printf.sprintf "%.3f µs" (t /. 1e3)
          else Printf.sprintf "%.1f ns" t
        | Some [] | None -> "n/a"
      in
      let r2 =
        match Analyze.OLS.r_square r with
        | Some v -> Printf.sprintf "%.4f" v
        | None -> "-"
      in
      pf "%-64s %14s %8s@." name time r2)
    rows

let () =
  pf "gdpn reproduction harness — tables and benchmarks@.";
  tables ();
  run_benchmarks ();
  pf "@.done.@."
