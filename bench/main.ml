(* The benchmark & table harness.

   Running `dune exec bench/main.exe` regenerates, in order:

   1. the paper's result tables — the Theorem 3.13/3.15/3.16 degree tables
      (E5-E7), the §3.2/§3.4 optimality summary (E1-E3, E9), the prior-work
      comparison (E12) and the utilization-degradation curve — each with a
      live verification column; and
   2. the Bechamel microbenchmarks B1-B7 (construction cost,
      reconfiguration latency across families, verification throughput,
      simulator rounds, baseline reconfiguration, and the
      constructive-vs-generic solver ablation).

   The paper itself reports no absolute performance numbers (its results are
   constructions and proofs), so the tables carry the reproduction and the
   microbenchmarks document this implementation's costs. *)

open Bechamel
(* Toolkit is referenced qualified to avoid shadowing Gdpn_core.Instance. *)
open Gdpn_core
module Compare = Gdpn_baselines.Compare
module Hayes = Gdpn_baselines.Hayes
module Spares = Gdpn_baselines.Spares
module Faultsim = Gdpn_faultsim

let pf = Format.printf

(* ------------------------------------------------------------------ *)
(* Part 1: tables                                                      *)
(* ------------------------------------------------------------------ *)

(* Sampled verification takes an explicit per-row seed, logged in the tag.
   Seeding from instance parameters (the old [| order inst |]) silently
   correlated the fault-sample sequences of same-order instances — every
   row of a table would re-check the same "random" fault sets. *)
let verified_tag inst ~seed ~exhaustive_up_to =
  if Instance.order inst <= exhaustive_up_to then
    if Verify.is_k_gd (Verify.exhaustive inst) then "exhaustive"
    else "FAILED"
  else begin
    let r =
      Verify.sampled ~rng:(Random.State.make [| seed |]) ~trials:2000 inst
    in
    if Verify.is_k_gd r then Printf.sprintf "sampled(2000)#%d" seed
    else Printf.sprintf "FAILED#%d" seed
  end

let degree_table k n_max =
  pf "@.--- Table: theorem %s — degree-optimal solutions for k = %d ---@."
    (match k with 1 -> "3.13" | 2 -> "3.15" | 3 -> "3.16" | _ -> "3.17")
    k;
  pf "%-4s %-10s %-10s %-18s %-30s %s@." "n" "max-deg" "lower-bnd" "verified"
    "construction" "nodes";
  for n = 1 to n_max do
    let inst = Family.build ~n ~k in
    pf "%-4d %-10d %-10d %-18s %-30s %d@." n
      (Instance.max_processor_degree inst)
      (Bounds.degree_lower_bound ~n ~k)
      (verified_tag inst ~seed:((1000 * k) + n) ~exhaustive_up_to:24)
      inst.Instance.name (Instance.order inst)
  done

let circulant_table () =
  pf "@.--- Table: §3.4 circulant family (Theorem 3.17) ---@.";
  pf "%-10s %-8s %-10s %-10s %-18s@." "(n,k)" "nodes" "max-deg" "lower-bnd"
    "verified";
  List.iter
    (fun (n, k) ->
      let inst = Circulant_family.build ~n ~k in
      pf "(%3d,%2d)   %-8d %-10d %-10d %-18s@." n k (Instance.order inst)
        (Instance.max_processor_degree inst)
        (Bounds.degree_lower_bound ~n ~k)
        (verified_tag inst ~seed:((100 * n) + k) ~exhaustive_up_to:37))
    [ (22, 4); (26, 5); (27, 5); (40, 4); (50, 6); (60, 7); (100, 8) ]

let impossibility_table () =
  pf "@.--- Table: Lemma 3.14 machine check (E8) ---@.";
  let r = Impossibility.lemma_3_14 () in
  pf "degree-(4,3^6) graphs examined: %d@." r.Impossibility.graphs_examined;
  pf "(graph, terminal-assignment) candidates: %d@."
    r.Impossibility.assignments_examined;
  pf "2-gracefully-degradable solutions found: %d (paper: 0)@."
    r.Impossibility.solutions_found

let comparison_table () =
  pf "@.--- Table: prior-work comparison at (n,k) = (8,2), exhaustive (E12) ---@.";
  List.iter
    (fun row -> pf "%a@." Compare.pp_row row)
    (Compare.table ~n:8 ~k:2 ());
  pf "@.--- Series: utilization vs fault count (2000 random fault sets per point) ---@.";
  let gdpn = Compare.gdpn_scheme ~n:8 ~k:2 in
  let hayes = Hayes.scheme ~n:8 ~k:2 in
  let spares = Spares.scheme ~n:8 ~k:2 in
  pf "%-4s %-8s %-8s %-8s@." "f" "gdpn" "hayes" "spares";
  for f = 0 to 2 do
    let at s = Compare.utilization_vs_faults s ~f ~trials:2000 ~seed:(f + 1) in
    pf "%-4d %-8.4f %-8.4f %-8.4f@." f (at gdpn) (at hayes) (at spares)
  done

let link_fault_table () =
  pf "@.--- Table: link-fault survey — graceful vs degraded (E13) ---@.";
  pf "%-10s %s@." "instance" "result";
  List.iter
    (fun (label, inst) ->
      pf "%-10s %a@." label Link_faults.pp_survey
        (Link_faults.survey_exhaustive inst))
    [
      ("G(1,2)", Small_n.g1 ~k:2);
      ("G(2,2)", Small_n.g2 ~k:2);
      ("G(3,2)", Small_n.g3 ~k:2);
      ("G(6,2)", Special.g62 ());
      ("G(4,3)", Special.g43 ());
    ]

let tolerance_table () =
  pf "@.--- Table: measured exact fault tolerance (breaking sets at k+1) ---@.";
  pf "%-22s %-10s %-10s %s@." "instance" "designed" "measured"
    "smallest breaking set";
  List.iter
    (fun inst ->
      let witness =
        match Verify.breaking_fault_set inst with
        | Some w -> "{" ^ String.concat "," (List.map string_of_int w) ^ "}"
        | None -> "-"
      in
      pf "%-22s %-10d %-10d %s@." inst.Instance.name inst.Instance.k
        (Verify.tolerance inst) witness)
    [
      Small_n.g1 ~k:2; Small_n.g2 ~k:2; Small_n.g3 ~k:2; Special.g62 ();
      Special.g43 ();
    ]

let survival_table () =
  pf "@.--- Table: beyond-spec survival at (n,k) = (8,2) (E15, 200 trials) ---@.";
  let rng () = Random.State.make [| 2026 |] in
  pf "%-14s %a@." "gdpn" Gdpn_baselines.Survival.pp_stats
    (Gdpn_baselines.Survival.instance_lifetime ~rng:(rng ()) ~trials:200
       (Family.build ~n:8 ~k:2));
  List.iter
    (fun s ->
      pf "%-14s %a@." s.Gdpn_baselines.Scheme.name
        Gdpn_baselines.Survival.pp_stats
        (Gdpn_baselines.Survival.scheme_lifetime ~rng:(rng ()) ~trials:200 s))
    [
      Hayes.scheme ~n:8 ~k:2; Spares.scheme ~n:8 ~k:2;
      Gdpn_baselines.Rosenberg.scheme ~n:8 ~k:2;
    ]

let layout_table () =
  pf "@.--- Table: ring-layout wire costs (circulant family, natural layout) ---@.";
  pf "%-10s %-12s %-12s %-14s@." "(n,k)" "max wire" "total wire"
    "pipeline wire";
  List.iter
    (fun (n, k) ->
      let inst = Circulant_family.build ~n ~k in
      let l = Layout.circulant_natural inst in
      let pipe_wire =
        match Reconfig.solve_list inst ~faults:[] with
        | Reconfig.Pipeline p -> Layout.pipeline_wirelength l p
        | _ -> nan
      in
      pf "(%3d,%2d)   %-12.4f %-12.4f %-14.4f@." n k
        (Layout.max_edge_length l inst.Instance.graph)
        (Layout.total_edge_length l inst.Instance.graph)
        pipe_wire)
    [ (22, 4); (40, 4); (26, 5); (27, 5); (50, 6) ];
  pf "(odd k pays the bisector wires; odd n keeps them to a matching)@."

let attack_table () =
  pf "@.--- Table: adversarial reconfiguration cost, generic solver \
      (expansions; budget-capped at 30k) ---@.";
  let inst = Circulant_family.build ~n:40 ~k:4 in
  let rng = Random.State.make [| 2027 |] in
  let mean, worst =
    Attack.random_baseline ~rng ~trials:60 ~budget:30_000 inst
  in
  let adv = Attack.worst_case ~rng ~restarts:1 ~budget:30_000 inst in
  pf "G(40,4): random mean=%d, random worst=%d, hill-climbed=%d \
      (set {%s}, %d probes)@."
    mean worst adv.Attack.expansions
    (String.concat "," (List.map string_of_int adv.Attack.faults))
    adv.Attack.evaluations;
  (* The constructive solver on the adversarial set, for contrast. *)
  let expansions = ref 0 in
  (match
     Reconfig.solve_generic ~budget:30_000 ~expansions inst
       ~faults:(Gdpn_graph.Bitset.of_list (Instance.order inst)
                  adv.Attack.faults)
   with
  | _ -> ());
  (match Reconfig.solve_list inst ~faults:adv.Attack.faults with
  | Reconfig.Pipeline _ ->
    pf "constructive solver tolerates the adversarial set (strategy \
        dispatch); generic needed %d expansions@."
      !expansions
  | _ -> pf "UNEXPECTED: constructive solver failed@.")

let diameter_table () =
  pf "@.--- Table: network diameter (hop latency bound) at k = 2 ---@.";
  pf "%-6s %-8s %-10s %-10s@." "n" "gdpn" "hayes" "spares";
  List.iter
    (fun n ->
      let dia g =
        match
          Gdpn_graph.Connectivity.diameter g
            ~alive:(Gdpn_graph.Bitset.full (Gdpn_graph.Graph.order g))
        with
        | Some d -> string_of_int d
        | None -> "-"
      in
      pf "%-6d %-8s %-10s %-10s@." n
        (dia (Family.build ~n ~k:2).Instance.graph)
        (dia (Hayes.graph ~n ~k:2))
        (dia (Gdpn_baselines.Spares.graph ~n ~k:2)))
    [ 4; 8; 16; 32 ];
  pf "(spares buy small diameter with degree linear in n; gdpn and hayes \
      grow linearly at constant degree)@."

let tables () =
  degree_table 1 14;
  degree_table 2 14;
  degree_table 3 14;
  circulant_table ();
  impossibility_table ();
  comparison_table ();
  link_fault_table ();
  tolerance_table ();
  survival_table ();
  layout_table ();
  attack_table ();
  diameter_table ()

(* ------------------------------------------------------------------ *)
(* Part 2: microbenchmarks                                             *)
(* ------------------------------------------------------------------ *)

let fault_sets inst ~seed ~count =
  let rng = Random.State.make [| seed |] in
  Array.init 32 (fun _ ->
      Array.to_list
        (Gdpn_graph.Combinat.sample rng (Instance.order inst) count))

let bench_solve name inst ~seed =
  let sets = fault_sets inst ~seed ~count:inst.Instance.k in
  let i = ref 0 in
  Test.make ~name
    (Staged.stage (fun () ->
         let faults = sets.(!i land 31) in
         incr i;
         Sys.opaque_identity (Reconfig.solve_list inst ~faults)))

let bench_solve_generic name inst ~seed =
  let sets = fault_sets inst ~seed ~count:inst.Instance.k in
  let order = Instance.order inst in
  let i = ref 0 in
  Test.make ~name
    (Staged.stage (fun () ->
         let faults = Gdpn_graph.Bitset.of_list order (sets.(!i land 31)) in
         incr i;
         Sys.opaque_identity (Reconfig.solve_generic inst ~faults)))

let b1_construction =
  Test.make_grouped ~name:"B1-construction"
    [
      Test.make ~name:"family n=12 k=2"
        (Staged.stage (fun () -> Sys.opaque_identity (Family.build ~n:12 ~k:2)));
      Test.make ~name:"family n=13 k=3"
        (Staged.stage (fun () -> Sys.opaque_identity (Family.build ~n:13 ~k:3)));
      Test.make ~name:"circulant n=40 k=4"
        (Staged.stage (fun () ->
             Sys.opaque_identity (Circulant_family.build ~n:40 ~k:4)));
      Test.make ~name:"circulant n=200 k=6"
        (Staged.stage (fun () ->
             Sys.opaque_identity (Circulant_family.build ~n:200 ~k:6)));
    ]

let b2_reconfig_small_k =
  Test.make_grouped ~name:"B2-reconfig-small-k"
    [
      bench_solve "G(1,8) clique scan" (Small_n.g1 ~k:8) ~seed:1;
      bench_solve "G(3,6) generic" (Small_n.g3 ~k:6) ~seed:2;
      bench_solve "ext tower n=31 k=2" (Family.build ~n:31 ~k:2) ~seed:3;
      bench_solve "ext tower n=61 k=2" (Family.build ~n:61 ~k:2) ~seed:4;
    ]

let b3_reconfig_circulant =
  Test.make_grouped ~name:"B3-reconfig-circulant"
    [
      bench_solve "G(22,4)" (Circulant_family.build ~n:22 ~k:4) ~seed:5;
      bench_solve "G(40,4)" (Circulant_family.build ~n:40 ~k:4) ~seed:6;
      bench_solve "G(100,6)" (Circulant_family.build ~n:100 ~k:6) ~seed:7;
      bench_solve "G(200,6)" (Circulant_family.build ~n:200 ~k:6) ~seed:8;
    ]

let b4_verification =
  let g62 = Special.g62 () in
  let g43 = Special.g43 () in
  Test.make_grouped ~name:"B4-verification"
    [
      Test.make ~name:"exhaustive G(6,2): 106 fault sets"
        (Staged.stage (fun () -> Sys.opaque_identity (Verify.exhaustive g62)));
      Test.make ~name:"exhaustive G(4,3): 576 fault sets"
        (Staged.stage (fun () -> Sys.opaque_identity (Verify.exhaustive g43)));
    ]

let b5_simulator =
  let inst = Family.build ~n:9 ~k:2 in
  let stages = Faultsim.Stage.video_codec () in
  Test.make_grouped ~name:"B5-simulator"
    [
      Test.make ~name:"video codec, 10 rounds, no faults"
        (Staged.stage (fun () ->
             let machine = Faultsim.Machine.create inst in
             Sys.opaque_identity
               (Faultsim.Runner.run ~machine ~stages
                  ~source:(Faultsim.Stream.Sine_mixture [ (0.02, 1.0) ])
                  ~frame_length:128 ~rounds:10 ())));
      Test.make ~name:"video codec, 10 rounds, 2 faults"
        (Staged.stage (fun () ->
             let machine = Faultsim.Machine.create inst in
             let rng = Faultsim.Stream.Prng.create 3 in
             let schedule =
               Faultsim.Injector.random_processors_only ~rng inst ~count:2
                 ~rounds:10
             in
             Sys.opaque_identity
               (Faultsim.Runner.run ~machine ~stages
                  ~source:(Faultsim.Stream.Sine_mixture [ (0.02, 1.0) ])
                  ~frame_length:128 ~rounds:10 ~schedule ())));
    ]

let b6_baselines =
  let rng = Random.State.make [| 9 |] in
  let sets =
    Array.init 32 (fun _ -> Array.to_list (Gdpn_graph.Combinat.sample rng 34 2))
  in
  let i = ref 0 in
  let hayes = Hayes.scheme ~n:32 ~k:2 in
  let spares = Spares.scheme ~n:32 ~k:2 in
  Test.make_grouped ~name:"B6-baselines"
    [
      Test.make ~name:"hayes embed n=32 k=2"
        (Staged.stage (fun () ->
             let f = sets.(!i land 31) in
             incr i;
             Sys.opaque_identity (hayes.Gdpn_baselines.Scheme.tolerate f)));
      Test.make ~name:"spares tolerate n=32 k=2"
        (Staged.stage (fun () ->
             let f = sets.(!i land 31) in
             incr i;
             Sys.opaque_identity (spares.Gdpn_baselines.Scheme.tolerate f)));
    ]

let b7_ablation =
  let circ = Circulant_family.build ~n:40 ~k:4 in
  let ext = Family.build ~n:31 ~k:2 in
  Test.make_grouped ~name:"B7-ablation-constructive-vs-generic"
    [
      bench_solve "circulant G(40,4) constructive" circ ~seed:10;
      bench_solve_generic "circulant G(40,4) generic" circ ~seed:10;
      bench_solve "extension n=31 constructive" ext ~seed:11;
      bench_solve_generic "extension n=31 generic" ext ~seed:11;
    ]

let b8_repair =
  (* Local splice vs full reconfiguration after one internal-processor
     fault on the same instance and embedding. *)
  let inst = Family.build ~n:31 ~k:2 in
  let order = Instance.order inst in
  let clean = Gdpn_graph.Bitset.create order in
  let pipeline =
    match Reconfig.solve inst ~faults:clean with
    | Reconfig.Pipeline p -> Pipeline.normalise inst p
    | _ -> failwith "bench setup: fault-free pipeline"
  in
  (* Internal processors along the path (skip terminals + endpoints). *)
  let internal =
    match pipeline.Pipeline.nodes with
    | _ :: rest ->
      Array.of_list (List.filteri (fun i _ -> i > 0 && i < List.length rest - 2) rest)
    | [] -> [||]
  in
  let i = ref 0 in
  Test.make_grouped ~name:"B8-repair-vs-resolve"
    [
      Test.make ~name:"local repair (splice path)"
        (Staged.stage (fun () ->
             let v = internal.(!i mod Array.length internal) in
             incr i;
             let faults = Gdpn_graph.Bitset.create order in
             Gdpn_graph.Bitset.add faults v;
             Sys.opaque_identity
               (Repair.repair inst ~current:pipeline ~faults ~failed:v)));
      Test.make ~name:"full reconfiguration"
        (Staged.stage (fun () ->
             let v = internal.(!i mod Array.length internal) in
             incr i;
             let faults = Gdpn_graph.Bitset.create order in
             Gdpn_graph.Bitset.add faults v;
             Sys.opaque_identity (Reconfig.solve inst ~faults)));
    ]

let b9_link_faults =
  let inst = Special.g62 () in
  let edges = Array.of_list (Gdpn_graph.Graph.edges inst.Instance.graph) in
  let i = ref 0 in
  Test.make_grouped ~name:"B9-link-faults"
    [
      Test.make ~name:"mixed solve, one link fault on G(6,2)"
        (Staged.stage (fun () ->
             let u, v = edges.(!i mod Array.length edges) in
             incr i;
             Sys.opaque_identity
               (Link_faults.solve inst ~faults:[ Link_faults.Link (u, v) ])));
      Test.make ~name:"exhaustive mixed survey of G(1,2)"
        (Staged.stage
           (let g12 = Small_n.g1 ~k:2 in
            fun () -> Sys.opaque_identity (Link_faults.survey_exhaustive g12)));
    ]

let b10_des =
  let inst = Family.build ~n:9 ~k:2 in
  let stages = Faultsim.Stage.fir_bank 8 in
  let cfg = { Faultsim.Des.default_config with arrival_period = 4000 } in
  let proc = List.nth (Instance.processors inst) 3 in
  Test.make_grouped ~name:"B10-discrete-event"
    [
      Test.make ~name:"60 tokens, no faults"
        (Staged.stage (fun () ->
             Sys.opaque_identity
               (Faultsim.Des.simulate
                  ~machine:(Faultsim.Machine.create inst)
                  ~stages ~config:cfg ~faults:[] ~tokens:60 ())));
      Test.make ~name:"60 tokens, one mid-stream fault"
        (Staged.stage (fun () ->
             Sys.opaque_identity
               (Faultsim.Des.simulate
                  ~machine:(Faultsim.Machine.create inst)
                  ~stages ~config:cfg
                  ~faults:[ (100_000, proc) ]
                  ~tokens:60 ())));
    ]

let b11_engine =
  let module Engine = Gdpn_engine.Engine in
  (* Reconfiguration latency: the same 32 fault sets cycled, once through
     the engine's plan cache (everything after the first lap is a lookup or
     a splice) and once with the cache bypassed (ctx reuse only, full
     solver every call). *)
  let inst = Circulant_family.build ~n:40 ~k:4 in
  let order = Instance.order inst in
  let masks =
    Array.map
      (Gdpn_graph.Bitset.of_list order)
      (fault_sets inst ~seed:12 ~count:inst.Instance.k)
  in
  let cached_engine = Engine.create inst in
  let uncached_engine = Engine.create inst in
  let i = ref 0 in
  (* Verification throughput: the same exhaustive fault space (G(4,3), 576
     fault sets) on one domain vs the default domain count.  576 items is
     below the serial-fallback threshold, so the multi-domain row now
     degrades to the serial path (that is the point: small instances must
     not pay fan-out costs); the forced-spawn row bypasses the threshold
     to expose the true pool dispatch overhead — on a single-core host
     that is pure sharding overhead, with real cores it is the speedup.
     Reports are identical in all three rows (see test_engine). *)
  let g43 = Special.g43 () in
  let nd = Stdlib.max 2 (Engine.Parallel.default_domains ()) in
  Test.make_grouped ~name:"B11-engine"
    [
      Test.make ~name:"G(40,4) solve, plan cache"
        (Staged.stage (fun () ->
             let faults = masks.(!i land 31) in
             incr i;
             Sys.opaque_identity (Engine.solve cached_engine ~faults)));
      Test.make ~name:"G(40,4) solve, uncached"
        (Staged.stage (fun () ->
             let faults = masks.(!i land 31) in
             incr i;
             Sys.opaque_identity
               (Engine.solve ~cache:false uncached_engine ~faults)));
      Test.make ~name:"G(4,3) exhaustive verify, 1 domain"
        (Staged.stage (fun () ->
             Sys.opaque_identity
               (Engine.Parallel.verify_exhaustive ~domains:1 g43)));
      Test.make
        ~name:(Printf.sprintf "G(4,3) exhaustive verify, %d domains" nd)
        (Staged.stage (fun () ->
             Sys.opaque_identity
               (Engine.Parallel.verify_exhaustive ~domains:nd g43)));
      Test.make
        ~name:
          (Printf.sprintf "G(4,3) exhaustive verify, %d domains forced spawn"
             nd)
        (Staged.stage (fun () ->
             Sys.opaque_identity
               (Engine.Parallel.verify_exhaustive ~domains:nd
                  ~min_items_per_domain:0 g43)));
    ]

let b12_symmetry =
  (* Orbit-reduced vs full exhaustive verification (PR 2).  The timed
     orbit rows pay the whole symmetry path except the group computation
     itself (a few ms, one-off per instance in practice): orbit
     enumeration plus one solve per representative.  G(3,5)'s group has
     order 32 (16 label automorphisms × the input/output reversal); the
     circulant's solution graph keeps only the reversal (the ring's
     rotations do not survive the terminal attachments), so its honest
     ceiling is 2×.  The trivial-group rows measure the degradation
     guarantee: G(3,2) has no symmetry at all, and the [~symmetry]
     argument must cost within noise of the plain path. *)
  let g35 = Small_n.g3 ~k:5 in
  let g35_sym = Instance.symmetry g35 in
  let circ = Circulant_family.build ~n:22 ~k:4 in
  let circ_sym = Instance.symmetry circ in
  let triv = Small_n.g3 ~k:2 in
  let triv_sym = Instance.symmetry triv in
  Test.make_grouped ~name:"B12-symmetry"
    [
      Test.make ~name:"group computation G(3,5)"
        (Staged.stage (fun () -> Sys.opaque_identity (Instance.symmetry g35)));
      Test.make ~name:"G(3,5) exhaustive, full"
        (Staged.stage (fun () -> Sys.opaque_identity (Verify.exhaustive g35)));
      Test.make ~name:"G(3,5) exhaustive, orbit-reduced"
        (Staged.stage (fun () ->
             Sys.opaque_identity (Verify.exhaustive ~symmetry:g35_sym g35)));
      Test.make ~name:"G(22,4) circulant exhaustive, full"
        (Staged.stage (fun () -> Sys.opaque_identity (Verify.exhaustive circ)));
      Test.make ~name:"G(22,4) circulant exhaustive, orbit-reduced"
        (Staged.stage (fun () ->
             Sys.opaque_identity (Verify.exhaustive ~symmetry:circ_sym circ)));
      Test.make ~name:"G(3,2) trivial group, plain path"
        (Staged.stage (fun () -> Sys.opaque_identity (Verify.exhaustive triv)));
      Test.make ~name:"G(3,2) trivial group, symmetry fallback"
        (Staged.stage (fun () ->
             Sys.opaque_identity (Verify.exhaustive ~symmetry:triv_sym triv)));
    ]

let b13_kernel =
  (* Word-parallel bitset-row kernel vs the retained reference
     backtracker (PR 4).  Both paths return identical outcomes and
     perform identical expansion counts by contract (test_kernel, gdp
     verify --crosscheck), so any delta is pure kernel mechanics:
     adjacency-row candidate generation, frontier-bitset BFS
     connectivity, incremental degree summaries.  The solve rows cycle
     32 fixed fault masks through the generic solver; the verify rows
     run a whole exhaustive fault space per iteration. *)
  let circ = Circulant_family.build ~n:40 ~k:4 in
  let order = Instance.order circ in
  let masks =
    Array.map
      (Gdpn_graph.Bitset.of_list order)
      (fault_sets circ ~seed:21 ~count:circ.Instance.k)
  in
  let i = ref 0 in
  let j = ref 0 in
  let g62 = Special.g62 () in
  let ref_solve inst ~faults = Reconfig.solve ~reference:true inst ~faults in
  Test.make_grouped ~name:"B13-kernel"
    [
      Test.make ~name:"G(40,4) solve generic, kernel"
        (Staged.stage (fun () ->
             let faults = masks.(!i land 31) in
             incr i;
             Sys.opaque_identity (Reconfig.solve_generic circ ~faults)));
      Test.make ~name:"G(40,4) solve generic, reference"
        (Staged.stage (fun () ->
             let faults = masks.(!j land 31) in
             incr j;
             Sys.opaque_identity
               (Reconfig.solve_generic ~reference:true circ ~faults)));
      Test.make ~name:"G(6,2) exhaustive verify, kernel"
        (Staged.stage (fun () -> Sys.opaque_identity (Verify.exhaustive g62)));
      Test.make ~name:"G(6,2) exhaustive verify, reference"
        (Staged.stage (fun () ->
             Sys.opaque_identity
               (Verify.exhaustive ~solve:(ref_solve g62) g62)));
    ]

let b14_splice =
  (* Prefix-tree splice-first verification (PR 5).  The splice rows walk
     the fault space as a DFS prefix tree, patching each set from its
     parent's plan ({!Repair.patch}) and only running the Hamilton solver
     when the splice fails; the from-scratch rows disable that and solve
     every set — the pre-PR-5 behaviour.  Reports are byte-identical by
     construction (test_splice, gdp verify --crosscheck).  The sharded
     rows measure the work-stealing scheduler at 1 vs N domains with the
     serial fallback disabled, so N-domain cost on a small space is an
     upper bound on the scheduler overhead. *)
  let module Engine = Gdpn_engine.Engine in
  let g35 = Small_n.g3 ~k:5 in
  let circ = Circulant_family.build ~n:22 ~k:4 in
  let g43 = Special.g43 () in
  let nd = Stdlib.max 2 (Engine.Parallel.default_domains ()) in
  Test.make_grouped ~name:"B14-splice"
    [
      Test.make ~name:"G(3,5) exhaustive, splice"
        (Staged.stage (fun () -> Sys.opaque_identity (Verify.exhaustive g35)));
      Test.make ~name:"G(3,5) exhaustive, from-scratch"
        (Staged.stage (fun () ->
             Sys.opaque_identity (Verify.exhaustive ~splice:false g35)));
      Test.make ~name:"G(22,4) circulant exhaustive, splice"
        (Staged.stage (fun () -> Sys.opaque_identity (Verify.exhaustive circ)));
      Test.make ~name:"G(22,4) circulant exhaustive, from-scratch"
        (Staged.stage (fun () ->
             Sys.opaque_identity (Verify.exhaustive ~splice:false circ)));
      Test.make ~name:"G(4,3) sharded splice verify, 1 domain"
        (Staged.stage (fun () ->
             Sys.opaque_identity
               (Engine.Parallel.verify_exhaustive ~domains:1
                  ~min_items_per_domain:0 g43)));
      Test.make
        ~name:(Printf.sprintf "G(4,3) sharded splice verify, %d domains" nd)
        (Staged.stage (fun () ->
             Sys.opaque_identity
               (Engine.Parallel.verify_exhaustive ~domains:nd
                  ~min_items_per_domain:0 g43)));
    ]

let b15_fault_model =
  (* Generalized fault models (PR 6).  The G(3,5) pair measures the cost
     of routing the legacy node-only verifier through the Fault_model
     abstraction — reports are byte-identical by contract
     (test_fault_model, gdp verify --crosscheck), so the delta is pure
     closure indirection.  The mixed rows enumerate the node+link
     universe of G(1,3) (26 elements, 2952 fault sets) with and without
     the induced-symmetry orbit reduction; the adversary row runs
     best-response search over the colored universe. *)
  let g35 = Small_n.g3 ~k:5 in
  let g35_node = Fault_model.node g35 in
  let g13 = Family.build ~n:1 ~k:3 in
  let g13_mixed = Fault_model.mixed g13 in
  let g13_sym = Instance.symmetry g13 in
  let cap = 1_000_000 in
  Test.make_grouped ~name:"B15-fault-model"
    [
      Test.make ~name:"G(3,5) exhaustive, legacy node path"
        (Staged.stage (fun () -> Sys.opaque_identity (Verify.exhaustive g35)));
      Test.make ~name:"G(3,5) exhaustive, generalized node model"
        (Staged.stage (fun () ->
             Sys.opaque_identity (Verify.exhaustive_model g35_node)));
      Test.make ~name:"G(1,3) mixed exhaustive, full"
        (Staged.stage (fun () ->
             Sys.opaque_identity
               (Verify.exhaustive_model ~max_failures:cap g13_mixed)));
      Test.make ~name:"G(1,3) mixed exhaustive, orbit-reduced"
        (Staged.stage (fun () ->
             Sys.opaque_identity
               (Verify.exhaustive_model ~max_failures:cap ~symmetry:g13_sym
                  g13_mixed)));
      Test.make ~name:"G(1,3) colored adversary, 2 restarts"
        (Staged.stage (fun () ->
             Sys.opaque_identity
               (Attack.worst_case
                  ~rng:(Random.State.make [| 17 |])
                  ~restarts:2
                  ~model:(Fault_model.colored g13)
                  g13)));
    ]

let b16_out_of_core =
  (* Out-of-core task scheduler (PR 7).  The fused row drains the
     orbit-representative stream re-ordered into DFS preorder, so each
     representative splices from its nearest solved ancestor — against
     its two standalone ancestors: orbit reduction with every
     representative solved from scratch, and splice-first enumeration of
     the full fault space.  The checkpointed row adds the write-through
     cost (one framed append + flush per drained unit, 253 units on
     G(3,5)).  All four rows produce the identical report by contract
     (test_resume, gdp verify --crosscheck). *)
  let module Engine = Gdpn_engine.Engine in
  let module Task = Engine.Parallel.Task in
  let module Checkpoint = Gdpn_engine.Checkpoint in
  let g35 = Small_n.g3 ~k:5 in
  let g35_sym = Instance.symmetry g35 in
  let fused = Task.exhaustive ~symmetry:g35_sym g35 in
  let orbit_only = Task.exhaustive ~symmetry:g35_sym ~splice:false g35 in
  let splice_only = Task.exhaustive g35 in
  Test.make_grouped ~name:"B16-out-of-core"
    [
      Test.make ~name:"G(3,5) fused orbit x splice task"
        (Staged.stage (fun () ->
             Sys.opaque_identity (Engine.Parallel.run_task ~domains:1 fused)));
      Test.make ~name:"G(3,5) orbit-only, representatives from scratch"
        (Staged.stage (fun () ->
             Sys.opaque_identity
               (Engine.Parallel.run_task ~domains:1 orbit_only)));
      Test.make ~name:"G(3,5) splice-only, full enumeration"
        (Staged.stage (fun () ->
             Sys.opaque_identity
               (Engine.Parallel.run_task ~domains:1 splice_only)));
      Test.make ~name:"G(3,5) fused, checkpointed write-through"
        (Staged.stage
           (let path = Filename.temp_file "gdpn_b16" ".ckpt" in
            at_exit (fun () -> try Sys.remove path with Sys_error _ -> ());
            fun () ->
              let w =
                Checkpoint.create ~path (Task.header fused ~max_failures:5)
              in
              let r =
                Engine.Parallel.run_task ~domains:1 ~checkpoint:w fused
              in
              Checkpoint.close w;
              Sys.opaque_identity r));
    ]

let b17_server =
  let module Shard_cache = Gdpn_engine.Shard_cache in
  let module Protocol = Gdpn_server.Protocol in
  (* The daemon's in-process hot path, isolated: the sharded plan-cache
     probe (the per-lookup floor the ≥1M req/s target rests on) and the
     protocol codec for the batch shapes the wire actually carries.  The
     daemon itself — socket, workers, concurrent clients — is measured
     end-to-end by the serve_daemon companion below. *)
  let order = 64 in
  let keys =
    Array.init 64 (fun i ->
        Gdpn_graph.Bitset.of_list order [ i; (i + 17) mod order ])
  in
  let cache = Shard_cache.create ~capacity:4096 () in
  Array.iteri (fun i key -> Shard_cache.add cache key i) keys;
  let absent = Gdpn_graph.Bitset.of_list order [ 1; 2; 3; 4 ] in
  let masks =
    List.init 256 (fun i -> [ i mod 17; (i * 5) mod 17 ])
  in
  let batch_req = Protocol.encode_request (Protocol.Batch { inst = 0; masks }) in
  let plans =
    Protocol.Outcomes
      (List.init 256 (fun i ->
           Protocol.Plan (List.init 19 (fun j -> (i + j) mod 17))))
  in
  let batch_resp = Protocol.encode_response plans in
  let i = ref 0 in
  Test.make_grouped ~name:"B17-server"
    [
      Test.make ~name:"shard cache hit probe"
        (Staged.stage (fun () ->
             let k = keys.(!i land 63) in
             incr i;
             Sys.opaque_identity (Shard_cache.find_opt cache k)));
      Test.make ~name:"shard cache miss probe"
        (Staged.stage (fun () ->
             Sys.opaque_identity (Shard_cache.find_opt cache absent)));
      Test.make ~name:"batch request encode, 256 masks"
        (Staged.stage (fun () ->
             Sys.opaque_identity
               (Protocol.encode_request (Protocol.Batch { inst = 0; masks }))));
      Test.make ~name:"batch request decode, 256 masks"
        (Staged.stage (fun () ->
             Sys.opaque_identity (Protocol.decode_request batch_req)));
      Test.make ~name:"batch response decode, 256 plans"
        (Staged.stage (fun () ->
             Sys.opaque_identity (Protocol.decode_response batch_resp)));
      Test.make ~name:"frame, 256-plan response payload"
        (Staged.stage (fun () ->
             Sys.opaque_identity (Gdpn_engine.Codec.frame batch_resp)));
    ]

(* Compile a plan store in-process (what `gdp compile-plans` does,
   without the subprocess): one representative per fault orbit, or one
   record per set when [flat], solved with the plain deterministic
   solver at the engine-default budget. *)
let compile_store ?(flat = false) ?max_size inst ~path =
  let module Plan_store = Gdpn_engine.Plan_store in
  let module Auto = Gdpn_graph.Auto in
  let module Bitset = Gdpn_graph.Bitset in
  let order = Instance.order inst in
  let max_size = Option.value max_size ~default:inst.Instance.k in
  let group =
    if flat then None
    else
      let g = Instance.symmetry inst in
      if Auto.is_trivial g then None else Some g
  in
  let items =
    match group with
    | Some g -> Auto.fault_orbits g ~max_size
    | None ->
      let acc = ref [] in
      Gdpn_graph.Combinat.iter_subsets_up_to order max_size (fun buf len ->
          acc := { Auto.set = Array.sub buf 0 len; size = 1 } :: !acc);
      Array.of_list (List.rev !acc)
  in
  let ctx = Reconfig.make_ctx inst in
  let w =
    Plan_store.writer ~digest:(Certify.digest inst) ~model_id:0
      ~orbit:(group <> None) ~usize:order ~order ~max_size
  in
  let mask = Bitset.create order in
  Array.iter
    (fun { Auto.set; size } ->
      Bitset.clear mask;
      Array.iter (Bitset.add mask) set;
      Plan_store.add w ~set ~count:size
        (Reconfig.solve ~budget:2_000_000 ~ctx inst ~faults:mask))
    items;
  Plan_store.write w ~path

let b18_plan_store =
  let module Plan_store = Gdpn_engine.Plan_store in
  let module Auto = Gdpn_graph.Auto in
  let module Engine = Gdpn_engine.Engine in
  let module Bitset = Gdpn_graph.Bitset in
  (* The serving tier's L2 floor: raw mmap probes (hit, transported hit,
     absent key) and the engine path a cold daemon actually takes —
     L1 trimmed to zero before every solve, so each run pays probe +
     validate + L1 promotion rather than a RAM-cache hit. *)
  let inst = Family.build ~n:9 ~k:2 in
  let order = Instance.order inst in
  let flat_path = Filename.temp_file "gdpn_b18_flat" ".store" in
  let orbit_path = Filename.temp_file "gdpn_b18_orbit" ".store" in
  at_exit (fun () ->
      List.iter
        (fun p -> try Sys.remove p with Sys_error _ -> ())
        [ flat_path; orbit_path ]);
  compile_store ~flat:true inst ~path:flat_path;
  compile_store inst ~path:orbit_path;
  let open_store path =
    match Plan_store.open_path ~path with
    | Ok s -> s
    | Error e -> failwith ("B18: " ^ e)
  in
  let flat_store = open_store flat_path in
  let orbit_store = open_store orbit_path in
  let keys =
    let acc = ref [] in
    Gdpn_graph.Combinat.iter_subsets_up_to order 2 (fun buf len ->
        if len = 2 then acc := Array.sub buf 0 len :: !acc);
    Array.of_list (List.rev !acc)
  in
  let group = Instance.symmetry inst in
  let noncanon =
    Array.of_list
      (List.filter
         (fun set -> Auto.canonical_set group set <> set)
         (Array.to_list keys))
  in
  let absent = [| 0; 1; 2 |] in
  let flat_engine = Engine.create inst in
  let orbit_engine = Engine.create inst in
  (match
     ( Engine.attach_store flat_engine ~path:flat_path,
       Engine.attach_store orbit_engine ~path:orbit_path )
   with
  | Ok (), Ok () -> ()
  | Error e, _ | _, Error e -> failwith ("B18: " ^ e));
  let masks = Array.map (fun s -> Bitset.of_list order (Array.to_list s)) keys in
  let nc_masks =
    Array.map (fun s -> Bitset.of_list order (Array.to_list s)) noncanon
  in
  let i1 = ref 0 and i2 = ref 0 and i3 = ref 0 and i4 = ref 0 in
  Test.make_grouped ~name:"B18-plan-store"
    [
      Test.make ~name:"mmap hit probe, flat G(9,2)"
        (Staged.stage (fun () ->
             let k = keys.(!i1 mod Array.length keys) in
             incr i1;
             Sys.opaque_identity (Plan_store.lookup flat_store k)));
      Test.make ~name:"mmap absent-key probe"
        (Staged.stage (fun () ->
             Sys.opaque_identity (Plan_store.lookup flat_store absent)));
      Test.make ~name:"canonicalize + probe + transport, orbit G(9,2)"
        (Staged.stage (fun () ->
             let set = noncanon.(!i2 mod Array.length noncanon) in
             incr i2;
             let key, perm = Auto.canonical_with_transport group set in
             let nodes =
               match Plan_store.lookup orbit_store key with
               | Some (Reconfig.Pipeline p) -> (
                 match perm with
                 | None -> p.Pipeline.nodes
                 | Some pm -> List.map (fun v -> pm.(v)) p.Pipeline.nodes)
               | _ -> []
             in
             Sys.opaque_identity nodes));
      Test.make ~name:"engine L2 hit, cold L1 (trim + solve), flat"
        (Staged.stage (fun () ->
             Engine.cache_trim flat_engine ~keep:0;
             let faults = masks.(!i3 mod Array.length masks) in
             incr i3;
             Sys.opaque_identity (Engine.solve flat_engine ~faults)));
      Test.make ~name:"engine L2 transported hit, cold L1, orbit"
        (Staged.stage (fun () ->
             Engine.cache_trim orbit_engine ~keep:0;
             let faults = nc_masks.(!i4 mod Array.length nc_masks) in
             incr i4;
             Sys.opaque_identity (Engine.solve orbit_engine ~faults)));
    ]

let groups =
  [
    ("B1-construction", b1_construction);
    ("B2-reconfig-small-k", b2_reconfig_small_k);
    ("B3-reconfig-circulant", b3_reconfig_circulant);
    ("B4-verification", b4_verification);
    ("B5-simulator", b5_simulator);
    ("B6-baselines", b6_baselines);
    ("B7-ablation-constructive-vs-generic", b7_ablation);
    ("B8-repair-vs-resolve", b8_repair);
    ("B9-link-faults", b9_link_faults);
    ("B10-discrete-event", b10_des);
    ("B11-engine", b11_engine);
    ("B12-symmetry", b12_symmetry);
    ("B13-kernel", b13_kernel);
    ("B14-splice", b14_splice);
    ("B15-fault-model", b15_fault_model);
    ("B16-out-of-core", b16_out_of_core);
    ("B17-server", b17_server);
    ("B18-plan-store", b18_plan_store);
  ]

type row = {
  row_name : string;
  ns_per_run : float option;
  minor_words_per_run : float option;
  r2 : float option;
}

let estimate r =
  match Analyze.OLS.estimates r with Some (t :: _) -> Some t | _ -> None

let run_benchmarks ?(only = "") () =
  let selected =
    List.filter
      (fun (name, _) ->
        String.length only <= String.length name
        && String.sub name 0 (String.length only) = only)
      groups
  in
  if selected = [] then begin
    pf "no benchmark group matches prefix %S; groups:@." only;
    List.iter (fun (name, _) -> pf "  %s@." name) groups;
    []
  end
  else begin
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
    in
    let instances =
      Toolkit.Instance.[ monotonic_clock; minor_allocated ]
    in
    let analyze cfg tests =
      if tests = [] then []
      else begin
        let raw =
          Benchmark.all cfg instances (Test.make_grouped ~name:"gdpn" tests)
        in
        let times = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
        let allocs = Analyze.all ols Toolkit.Instance.minor_allocated raw in
        Hashtbl.fold
          (fun name r acc ->
            {
              row_name = name;
              ns_per_run = estimate r;
              minor_words_per_run =
                Option.bind (Hashtbl.find_opt allocs name) estimate;
              r2 = Analyze.OLS.r_square r;
            }
            :: acc)
          times []
      end
    in
    (* The discrete-event rows have per-run costs in the hundreds of µs
       with a scheduling-heavy inner loop, and the construction rows
       build whole instances per run (large, bursty allocation); at the
       default 0.5 s quota their OLS fits were noise (r² 0.2–0.6).
       They get a 2 s quota and a stabilized heap of their own — the
       other groups stay fast. *)
    let is_slow (name, _) =
      name = "B10-discrete-event" || name = "B1-construction"
    in
    let cfg_of ?(stabilize = false) quota =
      Benchmark.cfg ~limit:2000 ~quota:(Time.second quota) ~kde:None
        ~stabilize ()
    in
    let fast, slow = List.partition (fun g -> not (is_slow g)) selected in
    let rows =
      analyze (cfg_of 0.5) (List.map snd fast)
      @ analyze (cfg_of ~stabilize:true 2.0) (List.map snd slow)
    in
    let rows =
      List.sort (fun a b -> compare a.row_name b.row_name) rows
    in
    pf "@.--- Microbenchmarks (monotonic clock / minor words per run) ---@.";
    pf "%-64s %14s %14s %8s@." "benchmark" "time/run" "minor w/run" "r²";
    List.iter
      (fun row ->
        let time =
          match row.ns_per_run with
          | Some t ->
            if t > 1e9 then Printf.sprintf "%.3f s" (t /. 1e9)
            else if t > 1e6 then Printf.sprintf "%.3f ms" (t /. 1e6)
            else if t > 1e3 then Printf.sprintf "%.3f µs" (t /. 1e3)
            else Printf.sprintf "%.1f ns" t
          | None -> "n/a"
        in
        let words =
          match row.minor_words_per_run with
          | Some w when w >= 1e6 -> Printf.sprintf "%.2fM" (w /. 1e6)
          | Some w when w >= 1e3 -> Printf.sprintf "%.1fk" (w /. 1e3)
          | Some w -> Printf.sprintf "%.1f" w
          | None -> "n/a"
        in
        let r2 =
          match row.r2 with
          | Some v -> Printf.sprintf "%.4f" v
          | None -> "-"
        in
        pf "%-64s %14s %14s %8s@." row.row_name time words r2)
      rows;
    rows
  end

(* ------------------------------------------------------------------ *)
(* B12 companion: solver-call counts (exact, measured once)            *)
(* ------------------------------------------------------------------ *)

type sym_stat = {
  stat_name : string;
  nodes : int;
  stat_k : int;
  group_order : int;
  fault_sets : int;
  full_calls : int;
  orbit_calls : int;
  verdicts_equal : bool;
}

let symmetry_stats () =
  let module Auto = Gdpn_graph.Auto in
  List.map
    (fun (name, inst) ->
      let sym = Instance.symmetry inst in
      let full = Verify.exhaustive inst in
      let orbit = Verify.exhaustive ~symmetry:sym inst in
      {
        stat_name = name;
        nodes = Instance.order inst;
        stat_k = inst.Instance.k;
        group_order = Auto.order sym;
        fault_sets = full.Verify.fault_sets_checked;
        full_calls = full.Verify.solver_calls;
        orbit_calls = orbit.Verify.solver_calls;
        verdicts_equal = Verify.is_k_gd full = Verify.is_k_gd orbit;
      })
    [
      ("G(1,5)", Small_n.g1 ~k:5);
      ("G(2,5)", Small_n.g2 ~k:5);
      ("G(3,5)", Small_n.g3 ~k:5);
      ("circulant G(22,4)", Circulant_family.build ~n:22 ~k:4);
      ("G(3,2) trivial", Small_n.g3 ~k:2);
    ]

let print_symmetry_stats stats =
  pf "@.--- B12 companion: solver calls, full vs orbit-reduced ---@.";
  pf "%-20s %6s %4s %8s %10s %10s %10s %8s@." "instance" "nodes" "k"
    "|group|" "sets" "full" "orbit" "ratio";
  List.iter
    (fun s ->
      pf "%-20s %6d %4d %8d %10d %10d %10d %7.2fx@." s.stat_name s.nodes
        s.stat_k s.group_order s.fault_sets s.full_calls s.orbit_calls
        (float_of_int s.full_calls /. float_of_int (max 1 s.orbit_calls)))
    stats

(* ------------------------------------------------------------------ *)
(* B13 companion: fixed-workload kernel-vs-reference comparison        *)
(* ------------------------------------------------------------------ *)

(* Bechamel rows run quota-driven iteration counts, so their metrics
   cannot show "same expansions, less time" for a matched workload.  This
   companion runs each exhaustive verify exactly [reps] times through each
   path, reads the kernel/reference expansion counters around the runs,
   and reports wall time (best of [reps]) next to the per-run expansion
   counts — the expansions must agree exactly, the time must not. *)
type kernel_cmp = {
  cmp_name : string;
  cmp_solver_calls : int;
  kernel_ns : int;
  reference_ns : int;
  cmp_expansions : int;  (** per run, identical for both paths *)
  expansions_equal : bool;
  reports_equal : bool;
}

let kernel_comparison () =
  let module Metrics = Gdpn_obs.Metrics in
  let module Mclock = Gdpn_obs.Mclock in
  let exp_kernel = Metrics.counter "hamilton.expansions" in
  let exp_reference = Metrics.counter "hamilton.ref_expansions" in
  let reps = 5 in
  let run inst ~reference =
    let cell = if reference then exp_reference else exp_kernel in
    let solve ~faults = Reconfig.solve ~reference inst ~faults in
    let before = Metrics.value cell in
    let best = ref max_int in
    let report = ref None in
    for _ = 1 to reps do
      let t0 = Mclock.now_ns () in
      let r = Verify.exhaustive ~solve inst in
      let dur = Mclock.now_ns () - t0 in
      if dur < !best then best := dur;
      report := Some r
    done;
    (Option.get !report, !best, (Metrics.value cell - before) / reps)
  in
  List.map
    (fun (name, inst) ->
      let rk, kernel_ns, ek = run inst ~reference:false in
      let rr, reference_ns, er = run inst ~reference:true in
      {
        cmp_name = name;
        cmp_solver_calls = rk.Verify.solver_calls;
        kernel_ns;
        reference_ns;
        cmp_expansions = ek;
        expansions_equal = ek = er;
        reports_equal = rk = rr;
      })
    [
      ("G(4,3) exhaustive", Special.g43 ());
      ("G(6,2) exhaustive", Special.g62 ());
      ("G(3,5) exhaustive", Small_n.g3 ~k:5);
      ("circulant G(22,4) exhaustive", Circulant_family.build ~n:22 ~k:4);
    ]

let print_kernel_comparison cmps =
  pf "@.--- B13 companion: kernel vs reference, fixed workloads ---@.";
  pf "%-28s %8s %12s %12s %8s %12s %6s %6s@." "workload" "solves" "kernel_ns"
    "ref_ns" "speedup" "expansions" "=exp" "=rep";
  List.iter
    (fun c ->
      pf "%-28s %8d %12d %12d %7.2fx %12d %6b %6b@." c.cmp_name
        c.cmp_solver_calls c.kernel_ns c.reference_ns
        (float_of_int c.reference_ns /. float_of_int (max 1 c.kernel_ns))
        c.cmp_expansions c.expansions_equal c.reports_equal)
    cmps

(* ------------------------------------------------------------------ *)
(* B14 companion: fixed-workload splice-vs-from-scratch comparison     *)
(* ------------------------------------------------------------------ *)

(* Same fixed-workload protocol as the kernel comparison: each exhaustive
   verify runs exactly [reps] times per configuration, wall time is the
   best of [reps], and the splice/splice-failure counters are read around
   the spliced runs.  The four reports (splice, from-scratch, sharded at
   1 domain, sharded at N domains) must be structurally identical; the
   times must not.  [parn_ns <= par1_ns] is the scheduler's scaling
   acceptance bar on multi-core hosts. *)
type splice_cmp = {
  sp_name : string;
  sp_sets : int;
  sp_splices : int;  (** per run: sets answered by a parent-plan patch *)
  sp_splice_failures : int;  (** per run: patch failed, full solve ran *)
  splice_ns : int;
  no_splice_ns : int;
  par1_ns : int;  (** forced sharding, 1 domain, splice on *)
  parn_ns : int;  (** forced sharding, N domains, splice on *)
  parn_domains : int;
  sp_reports_equal : bool;
}

let splice_comparison () =
  let module Metrics = Gdpn_obs.Metrics in
  let module Mclock = Gdpn_obs.Mclock in
  let module Engine = Gdpn_engine.Engine in
  let splices = Metrics.counter "verify.splices" in
  let splice_failures = Metrics.counter "verify.splice_failures" in
  let reps = 5 in
  let time f =
    let best = ref max_int in
    let report = ref None in
    for _ = 1 to reps do
      let t0 = Mclock.now_ns () in
      let r = f () in
      let dur = Mclock.now_ns () - t0 in
      if dur < !best then best := dur;
      report := Some r
    done;
    (Option.get !report, !best)
  in
  let nd = Stdlib.max 2 (Engine.Parallel.default_domains ()) in
  List.map
    (fun (name, inst) ->
      let s0 = Metrics.value splices in
      let f0 = Metrics.value splice_failures in
      let r_sp, splice_ns = time (fun () -> Verify.exhaustive inst) in
      let per_run_splices = (Metrics.value splices - s0) / reps in
      let per_run_failures = (Metrics.value splice_failures - f0) / reps in
      let r_ns, no_splice_ns =
        time (fun () -> Verify.exhaustive ~splice:false inst)
      in
      let r_p1, par1_ns =
        time (fun () ->
            Engine.Parallel.verify_exhaustive ~domains:1
              ~min_items_per_domain:0 inst)
      in
      let r_pn, parn_ns =
        time (fun () ->
            Engine.Parallel.verify_exhaustive ~domains:nd
              ~min_items_per_domain:0 inst)
      in
      {
        sp_name = name;
        sp_sets = r_sp.Verify.fault_sets_checked;
        sp_splices = per_run_splices;
        sp_splice_failures = per_run_failures;
        splice_ns;
        no_splice_ns;
        par1_ns;
        parn_ns;
        parn_domains = nd;
        sp_reports_equal = r_sp = r_ns && r_sp = r_p1 && r_sp = r_pn;
      })
    [
      ("G(4,3) exhaustive", Special.g43 ());
      ("G(6,2) exhaustive", Special.g62 ());
      ("G(3,5) exhaustive", Small_n.g3 ~k:5);
      ("circulant G(22,4) exhaustive", Circulant_family.build ~n:22 ~k:4);
    ]

let print_splice_comparison cmps =
  pf "@.--- B14 companion: splice vs from-scratch, fixed workloads ---@.";
  pf "%-28s %8s %8s %6s %12s %12s %8s %12s %12s %6s@." "workload" "sets"
    "splices" "fails" "splice_ns" "scratch_ns" "speedup" "par1_ns" "parN_ns"
    "=rep";
  List.iter
    (fun c ->
      pf "%-28s %8d %8d %6d %12d %12d %7.2fx %12d %12d %6b@." c.sp_name
        c.sp_sets c.sp_splices c.sp_splice_failures c.splice_ns c.no_splice_ns
        (float_of_int c.no_splice_ns /. float_of_int (max 1 c.splice_ns))
        c.par1_ns c.parn_ns c.sp_reports_equal)
    cmps

(* ------------------------------------------------------------------ *)
(* B15 companion: generalized fault models (exact, measured once)      *)
(* ------------------------------------------------------------------ *)

(* Mixed node+link exhaustive verification with and without the
   induced-symmetry orbit reduction; all four enumeration paths (splice,
   from-scratch, orbit, forced shards) must tell the same story, and the
   orbit column documents the solver-call savings on the generalized
   universe. *)
type fm_stat = {
  fm_name : string;
  fm_model : string;
  fm_universe : int;
  fm_sets : int;
  fm_full_calls : int;
  fm_orbit_calls : int;
  fm_failures : int;  (** orbit-expanded count of untolerated fault sets *)
  fm_paths_agree : bool;
}

let fault_model_stats () =
  let module Engine = Gdpn_engine.Engine in
  let cap = 1_000_000 in
  List.map
    (fun (name, inst, mk) ->
      let model = mk inst in
      let symmetry = Instance.symmetry inst in
      let full = Verify.exhaustive_model ~max_failures:cap model in
      let scratch =
        Verify.exhaustive_model ~max_failures:cap ~splice:false model
      in
      let par =
        Engine.Parallel.verify_exhaustive_model ~max_failures:cap ~domains:2
          ~min_items_per_domain:0 model
      in
      let orbit = Verify.exhaustive_model ~max_failures:cap ~symmetry model in
      {
        fm_name = name;
        fm_model = Fault_model.name model;
        fm_universe = Fault_model.size model;
        fm_sets = full.Verify.fault_sets_checked;
        fm_full_calls = full.Verify.solver_calls;
        fm_orbit_calls = orbit.Verify.solver_calls;
        fm_failures = List.length full.Verify.failures;
        fm_paths_agree =
          full = scratch && full = par
          && Verify.is_k_gd full = Verify.is_k_gd orbit
          && full.Verify.fault_sets_checked = orbit.Verify.fault_sets_checked
          && List.length full.Verify.failures
             = List.fold_left
                 (fun a f -> a + f.Verify.orbit)
                 0 orbit.Verify.failures;
      })
    [
      ("G(1,3)", Family.build ~n:1 ~k:3, Fault_model.mixed);
      ("G(3,4)", Family.build ~n:3 ~k:4, Fault_model.mixed);
      ("G(6,2)", Special.g62 (), Fault_model.mixed);
      ("G(3,2)", Small_n.g3 ~k:2, Fault_model.colored);
      ("G(3,2)", Small_n.g3 ~k:2, Fault_model.neighbor);
    ]

let print_fault_model_stats stats =
  pf "@.--- B15 companion: generalized models, full vs orbit-reduced ---@.";
  pf "%-10s %-9s %9s %10s %10s %10s %8s %9s %6s@." "instance" "model"
    "universe" "sets" "full" "orbit" "ratio" "failures" "agree";
  List.iter
    (fun s ->
      pf "%-10s %-9s %9d %10d %10d %10d %7.2fx %9d %6b@." s.fm_name s.fm_model
        s.fm_universe s.fm_sets s.fm_full_calls s.fm_orbit_calls
        (float_of_int s.fm_full_calls /. float_of_int (max 1 s.fm_orbit_calls))
        s.fm_failures s.fm_paths_agree)
    stats

(* Best-response adversary across fault models on one instance: which
   universe gives the adversary the most expensive fault set? *)
type adv_stat = {
  adv_model : string;
  adv_expansions : int;
  adv_faults : string;
  adv_evaluations : int;
}

let adversary_sweep () =
  let inst = Family.build ~n:1 ~k:3 in
  List.map
    (fun mk ->
      let model = mk inst in
      let f =
        Attack.worst_case
          ~rng:(Random.State.make [| 29 |])
          ~restarts:3 ~model inst
      in
      {
        adv_model = Fault_model.name model;
        adv_expansions = f.Attack.expansions;
        adv_faults = Fault_model.describe model f.Attack.faults;
        adv_evaluations = f.Attack.evaluations;
      })
    [ Fault_model.node; Fault_model.mixed; Fault_model.colored;
      Fault_model.neighbor ]

let print_adversary_sweep stats =
  pf "@.--- B15 companion: adversary sweep across models, G(1,3) ---@.";
  pf "%-10s %12s %12s  %s@." "model" "expansions" "evaluations" "worst set";
  List.iter
    (fun s ->
      pf "%-10s %12d %12d  %s@." s.adv_model s.adv_expansions
        s.adv_evaluations s.adv_faults)
    stats

(* ------------------------------------------------------------------ *)
(* B16 companion: multi-process scaling and the scale wall (PR 7)      *)
(* ------------------------------------------------------------------ *)

(* The coordinator spawns `gdp verify-worker` children, so these rows
   need the CLI binary on disk; GDPN_GDP overrides the default dune
   layout path.  On a single-core host the per-procs rows measure
   coordination overhead, not speedup — sets_per_s across procs is the
   honest scaling record either way. *)
let gdp_binary () =
  match Sys.getenv_opt "GDPN_GDP" with
  | Some p -> p
  | None -> "_build/default/bin/gdp.exe"

let worker_argv ~n ~k =
  [|
    gdp_binary (); "verify-worker"; "-n"; string_of_int n; "-k";
    string_of_int k; "--model"; "node"; "--max-failures"; "5";
  |]

type procs_row = {
  pr_label : string;
  pr_procs : int;  (** 0 = in-process run_task (no workers) *)
  pr_wall_ns : int;
  pr_sets : int;
  pr_sets_per_s : float;
  pr_ipc_bytes : int;  (** coordinator<->worker bytes, both directions *)
  pr_equal : bool;  (** report equals the sequential reference *)
}

let oocore_procs_rows () =
  let module Engine = Gdpn_engine.Engine in
  let module Task = Engine.Parallel.Task in
  let module Mp = Gdpn_engine.Mp in
  let module Metrics = Gdpn_obs.Metrics in
  let module Mclock = Gdpn_obs.Mclock in
  let n, k = (60, 3) in
  let inst = Family.build ~n ~k in
  let task = Task.exhaustive inst in
  let reference = Verify.exhaustive inst in
  let ipc = Metrics.counter "engine.ipc_bytes" in
  let argv = worker_argv ~n ~k in
  let row label procs f =
    let i0 = Metrics.value ipc in
    let t0 = Mclock.now_ns () in
    let r = f () in
    let wall = Stdlib.max 1 (Mclock.now_ns () - t0) in
    {
      pr_label = label;
      pr_procs = procs;
      pr_wall_ns = wall;
      pr_sets = r.Verify.fault_sets_checked;
      pr_sets_per_s =
        float_of_int r.Verify.fault_sets_checked
        /. (float_of_int wall /. 1e9);
      pr_ipc_bytes = Metrics.value ipc - i0;
      pr_equal = r = reference;
    }
  in
  if not (Sys.file_exists (gdp_binary ())) then begin
    pf "note: %s not found — skipping multi-process rows (build bin/gdp \
        or set GDPN_GDP)@."
      (gdp_binary ());
    []
  end
  else
    List.map
      (fun (label, procs) ->
        if procs = 0 then
          row label 0 (fun () -> Engine.Parallel.run_task ~domains:1 task)
        else row label procs (fun () -> Mp.run ~procs ~argv task))
      [
        ("G(60,3) in-process, 1 domain", 0); ("G(60,3) mp, 1 proc", 1);
        ("G(60,3) mp, 2 procs", 2); ("G(60,3) mp, 4 procs", 4);
      ]

let print_procs_rows rows =
  if rows <> [] then begin
    pf "@.--- B16 companion: multi-process verification, G(60,3) (59712 \
        sets) ---@.";
    pf "%-34s %6s %12s %12s %12s %6s@." "row" "procs" "wall_ns" "sets/s"
      "ipc_bytes" "=rep";
    List.iter
      (fun r ->
        pf "%-34s %6d %12d %12.0f %12d %6b@." r.pr_label r.pr_procs
          r.pr_wall_ns r.pr_sets_per_s r.pr_ipc_bytes r.pr_equal)
      rows
  end

(* The scale wall itself: an instance two orders of magnitude past the
   largest bechamel verification row (G(22,4), 66712 sets), verified once
   through the checkpointed multi-process path, then re-verified from a
   truncated copy of its own checkpoint — the resumed report must equal
   the full run's.  Minutes of single-core wall clock, so it only runs
   when GDPN_SCALE is set; the committed BENCH json carries the recorded
   numbers. *)
type scale_stat = {
  sc_name : string;
  sc_nodes : int;
  sc_k : int;
  sc_sets : int;
  sc_units : int;
  sc_procs : int;
  sc_wall_ns : int;
  sc_sets_per_s : float;
  sc_ipc_bytes : int;
  sc_ckpt_bytes : int;
  sc_units_checkpointed : int;
  sc_resume_units_kept : int;
  sc_resume_wall_ns : int;
  sc_resume_equal : bool;
  sc_all_tolerated : bool;
}

let oocore_scale () =
  if Sys.getenv_opt "GDPN_SCALE" = None then begin
    pf "note: GDPN_SCALE not set — skipping the G(333,3) scale run \
        (~an hour of single-core wall clock)@.";
    None
  end
  else if not (Sys.file_exists (gdp_binary ())) then None
  else begin
    let module Engine = Gdpn_engine.Engine in
    let module Task = Engine.Parallel.Task in
    let module Mp = Gdpn_engine.Mp in
    let module Checkpoint = Gdpn_engine.Checkpoint in
    let module Metrics = Gdpn_obs.Metrics in
    let module Mclock = Gdpn_obs.Mclock in
    let n, k = (333, 3) in
    let procs = 2 in
    let inst = Family.build ~n ~k in
    let task = Task.exhaustive inst in
    let header = Task.header task ~max_failures:5 in
    let nunits = Task.nunits task in
    let argv = worker_argv ~n ~k in
    let ipc = Metrics.counter "engine.ipc_bytes" in
    let ckpt_units = Metrics.counter "verify.units_checkpointed" in
    let path = Filename.temp_file "gdpn_scale" ".ckpt" in
    let partial = Filename.temp_file "gdpn_scale_resume" ".ckpt" in
    Fun.protect
      ~finally:(fun () ->
        List.iter
          (fun p -> try Sys.remove p with Sys_error _ -> ())
          [ path; partial ])
    @@ fun () ->
    pf "scale run: G(%d,%d), %d units, procs=%d (GDPN_SCALE)...@." n k
      nunits procs;
    let w = Checkpoint.create ~path header in
    let i0 = Metrics.value ipc in
    let c0 = Metrics.value ckpt_units in
    let t0 = Mclock.now_ns () in
    let report = Mp.run ~procs ~argv ~checkpoint:w task in
    Checkpoint.close w;
    let wall = Stdlib.max 1 (Mclock.now_ns () - t0) in
    let ipc_bytes = Metrics.value ipc - i0 in
    let units_checkpointed = Metrics.value ckpt_units - c0 in
    let ckpt_bytes =
      let ic = open_in_bin path in
      let n = in_channel_length ic in
      close_in ic;
      n
    in
    (* Resume leg: keep the first ~70% of recorded units, drop the rest
       — the shape an interrupted run leaves behind. *)
    let loaded =
      match Checkpoint.load ~path with
      | Ok l -> l
      | Error e -> failwith ("scale checkpoint unreadable: " ^ e)
    in
    let keep = 7 * nunits / 10 in
    let w2 = Checkpoint.create ~path:partial header in
    let kept = ref 0 in
    for u = 0 to nunits - 1 do
      if !kept < keep then
        match Hashtbl.find_opt loaded.Checkpoint.l_results u with
        | Some r ->
          Checkpoint.append w2 r;
          incr kept
        | None -> ()
    done;
    Checkpoint.close w2;
    let l2 =
      match Checkpoint.load ~path:partial with
      | Ok l -> l
      | Error e -> failwith ("partial checkpoint unreadable: " ^ e)
    in
    let w3 = Checkpoint.open_append ~path:partial in
    let t1 = Mclock.now_ns () in
    let resumed_report =
      Mp.run ~procs ~argv ~checkpoint:w3 ~resumed:l2.Checkpoint.l_results
        task
    in
    Checkpoint.close w3;
    let resume_wall = Stdlib.max 1 (Mclock.now_ns () - t1) in
    Some
      {
        sc_name = Printf.sprintf "G(%d,%d)" n k;
        sc_nodes = Instance.order inst;
        sc_k = k;
        sc_sets = report.Verify.fault_sets_checked;
        sc_units = nunits;
        sc_procs = procs;
        sc_wall_ns = wall;
        sc_sets_per_s =
          float_of_int report.Verify.fault_sets_checked
          /. (float_of_int wall /. 1e9);
        sc_ipc_bytes = ipc_bytes;
        sc_ckpt_bytes = ckpt_bytes;
        sc_units_checkpointed = units_checkpointed;
        sc_resume_units_kept = !kept;
        sc_resume_wall_ns = resume_wall;
        sc_resume_equal = resumed_report = report;
        sc_all_tolerated = Verify.is_k_gd report;
      }
  end

let print_scale = function
  | None -> ()
  | Some s ->
    pf "@.--- B16 companion: the scale wall, checkpointed multi-process \
        ---@.";
    pf "%s: %d nodes, k=%d, %d fault sets over %d units, procs=%d@."
      s.sc_name s.sc_nodes s.sc_k s.sc_sets s.sc_units s.sc_procs;
    pf "full run: %.1f s (%.0f sets/s), ipc %d bytes, checkpoint %d \
        bytes (%d units), all tolerated: %b@."
      (float_of_int s.sc_wall_ns /. 1e9)
      s.sc_sets_per_s s.sc_ipc_bytes s.sc_ckpt_bytes s.sc_units_checkpointed
      s.sc_all_tolerated;
    pf "resume from %d/%d units: %.1f s, report identical: %b@."
      s.sc_resume_units_kept s.sc_units
      (float_of_int s.sc_resume_wall_ns /. 1e9)
      s.sc_resume_equal

(* ------------------------------------------------------------------ *)
(* B17 companion: the gdpd daemon under concurrent clients (PR 9)      *)
(* ------------------------------------------------------------------ *)

(* End-to-end daemon throughput and latency over the real wire: a gdpd
   child process on a Unix socket, 1/2/4 client domains in lockstep
   batch mode, a cold lap (empty plan cache) and cached laps.  The
   clients here are deliberately minimal load generators — request
   frames are pre-encoded once and responses get an allocation-free
   structural walk (tag + varint skipping), so the single-core host
   spends its cycles on the daemon, not on materializing response lists
   client-side.  Response *correctness* is pinned separately: the canary
   below runs a fully-decoded crosschecked batch against a local engine,
   and the serve-smoke / test_server suites compare every byte. *)
let gdpd_binary () =
  match Sys.getenv_opt "GDPN_GDPD" with
  | Some p -> p
  | None -> "_build/default/bin/gdpd.exe"

type serve_row = {
  sv_clients : int;
  sv_phase : string;  (** "cold" (lap 1) or "cached" (laps 2..) *)
  sv_requests : int;  (** total across clients *)
  sv_batch : int;
  sv_wall_ns : int;  (** slowest client's wall clock *)
  sv_reqs_per_s : float;
  sv_p50_ns : int;  (** pooled per-frame round-trip latency *)
  sv_p99_ns : int;
}

let serve_percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0
  else
    sorted.(Stdlib.max 0
              (Stdlib.min (n - 1)
                 (int_of_float (ceil (p /. 100. *. float_of_int n)) - 1)))

(* Walk a batch response payload without building anything: returns the
   outcome count, raises on any structural violation.  [payload] may be
   a zero-copy view of a longer scratch buffer, so the logical length is
   explicit. *)
let walk_batch_response payload len =
  let module Codec = Gdpn_engine.Codec in
  if len = 0 || payload.[0] <> 'B' then failwith "not a batch response";
  let count, pos = Codec.get_uint payload 1 in
  let pos = ref pos in
  for _ = 1 to count do
    (if !pos >= len then failwith "truncated outcome");
    match payload.[!pos] with
    | '\000' ->
      let n, p = Codec.get_uint payload (!pos + 1) in
      pos := p;
      for _ = 1 to n do
        let _, p = Codec.get_uint payload !pos in
        pos := p
      done
    | '\001' | '\002' -> incr pos
    | _ -> failwith "bad outcome tag"
  done;
  if !pos <> len then failwith "trailing bytes";
  count

(* Adler-32 over the first [len] bytes of a scratch string view — the
   same checksum Codec.frame wrote, recomputed without slicing the
   payload out of the reused buffer. *)
let adler32_prefix s len =
  let a = ref 1 and b = ref 0 in
  let i = ref 0 in
  while !i < len do
    let stop = Stdlib.min len (!i + 5552) in
    for j = !i to stop - 1 do
      a := !a + Char.code (String.unsafe_get s j);
      b := !b + !a
    done;
    a := !a mod 65521;
    b := !b mod 65521;
    i := stop
  done;
  (!b lsl 16) lor !a

let rec write_all fd s pos len =
  if len > 0 then begin
    let n = Unix.write_substring fd s pos len in
    write_all fd s (pos + n) (len - n)
  end

let rec read_exactly fd buf pos len =
  if len > 0 then begin
    let n = Unix.read fd buf pos len in
    if n = 0 then failwith "daemon closed the connection";
    read_exactly fd buf (pos + n) (len - n)
  end

let serve_connect path =
  let rec go attempts =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX path) with
    | () -> fd
    | exception Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _)
      when attempts > 1 ->
      Unix.close fd;
      Unix.sleepf 0.05;
      go (attempts - 1)
  in
  go 100

(* One client: pre-encode the whole pool as request frames, then run
   [laps] laps, returning per-lap (wall_ns, per-frame samples). *)
let serve_client path ~seed ~requests ~batch ~laps ~barrier ~clients =
  let module Codec = Gdpn_engine.Codec in
  let module Protocol = Gdpn_server.Protocol in
  let module Mclock = Gdpn_obs.Mclock in
  let inst = Family.build ~n:9 ~k:2 in
  let order = Instance.order inst in
  let rng = Faultsim.Stream.Prng.create seed in
  let masks =
    List.init requests (fun _ ->
        let size = Faultsim.Stream.Prng.int rng (inst.Instance.k + 1) in
        List.init size (fun _ -> Faultsim.Stream.Prng.int rng order))
  in
  let rec frames acc = function
    | [] -> List.rev acc
    | masks ->
      let rec take acc n = function
        | rest when n = 0 -> (List.rev acc, rest)
        | [] -> (List.rev acc, [])
        | m :: rest -> take (m :: acc) (n - 1) rest
      in
      let chunk, rest = take [] batch masks in
      frames
        (Codec.frame
           (Protocol.encode_request (Protocol.Batch { inst = 0; masks = chunk }))
        :: acc)
        rest
  in
  let frames = frames [] masks in
  let fd = serve_connect path in
  (* Allocation-free response path: a reusable scratch buffer instead of
     input_frame's fresh payload string.  The laps run in lockstep with
     the daemon on one core, so client-side minor collections (and the
     long major slices of the bench process's bechamel-bloated heap they
     trigger) would show up directly in the daemon's measured wall. *)
  let scratch = ref (Bytes.create 65536) in
  let sample_buf = Array.make (List.length frames) 0 in
  let read_response () =
    let buf = !scratch in
    read_exactly fd buf 0 4;
    let len =
      Char.code (Bytes.unsafe_get buf 0)
      lor (Char.code (Bytes.unsafe_get buf 1) lsl 8)
      lor (Char.code (Bytes.unsafe_get buf 2) lsl 16)
      lor (Char.code (Bytes.unsafe_get buf 3) lsl 24)
    in
    if len < 0 then failwith "negative frame length";
    if Bytes.length !scratch < len + 4 then
      scratch := Bytes.create (2 * (len + 4));
    let buf = !scratch in
    read_exactly fd buf 0 (len + 4);
    let view = Bytes.unsafe_to_string buf in
    let crc =
      Char.code (Bytes.unsafe_get buf len)
      lor (Char.code (Bytes.unsafe_get buf (len + 1)) lsl 8)
      lor (Char.code (Bytes.unsafe_get buf (len + 2)) lsl 16)
      lor (Char.code (Bytes.unsafe_get buf (len + 3)) lsl 24)
    in
    if crc <> adler32_prefix view len then failwith "corrupt frame";
    walk_batch_response view len
  in
  (* Lap barrier: no lap starts until every client finished the previous
     one (and all are connected and encoded before lap 1), so the cold
     lap stays cold for everyone.  Each client bumps the counter once at
     the start of each lap, so lap [l] (0-based) may begin once the
     count reaches [(l+1) * clients] — every client has arrived.  The
     boundary comes from the lap index, never from the live counter: a
     fast client may already have bumped it for a later lap, and
     rounding the observed value up would strand the slow client on a
     boundary its own future increment is needed to reach.  Sleep while
     waiting — a spinning domain would steal the single core from the
     daemon we are measuring. *)
  let laps_out =
    Array.init laps (fun lap ->
        Atomic.incr barrier;
        let boundary = (lap + 1) * clients in
        while Atomic.get barrier < boundary do
          Unix.sleepf 0.0002
        done;
        let served = ref 0 in
        let nframes = ref 0 in
        let t0 = Mclock.now_ns () in
        List.iter
          (fun frame ->
            let f0 = Mclock.now_ns () in
            write_all fd frame 0 (String.length frame);
            served := !served + read_response ();
            sample_buf.(!nframes) <- Mclock.now_ns () - f0;
            incr nframes)
          frames;
        let wall = Mclock.now_ns () - t0 in
        if !served <> requests then failwith "response count mismatch";
        (wall, Array.sub sample_buf 0 !nframes))
  in
  (try Unix.close fd with Unix.Unix_error _ -> ());
  laps_out

let serve_rows () =
  let module Protocol = Gdpn_server.Protocol in
  let module Codec = Gdpn_engine.Codec in
  let module Engine = Gdpn_engine.Engine in
  if not (Sys.file_exists (gdpd_binary ())) then begin
    pf "note: %s not found — skipping daemon rows (build bin/gdpd or set \
        GDPN_GDPD)@."
      (gdpd_binary ());
    ([], true)
  end
  else begin
    (* Long laps on purpose: a lap is one wall-clock sample, and on a
       single core a ~15 ms lap is dominated by whichever scheduler
       preemption or multi-domain GC pause lands in it — 32 frames per
       client per lap amortizes that noise to run-to-run stability. *)
    let requests = 65536 and batch = 2048 and laps = 4 in
    (* The bechamel groups leave a large, fragmented major heap behind;
       compact once so GC slices taken during the load loop are paid on
       a tight heap. *)
    Gc.compact ();
    let devnull = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
    let rows =
      List.concat_map
        (fun clients ->
          let path = Filename.temp_file "gdpn_b17" ".sock" in
          Sys.remove path;
          (* Workers must cover the client count: a worker serves one
             connection to completion, and lockstep lap barriers mean a
             queued (unserved) client would stall every other client's
             next lap. *)
          let pid =
            Unix.create_process (gdpd_binary ())
              [|
                gdpd_binary (); "--instances"; "9:2"; "--socket"; path;
                "--workers"; string_of_int (Stdlib.max 2 clients);
              |]
              Unix.stdin devnull devnull
          in
          Fun.protect
            ~finally:(fun () ->
              (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
              ignore (Unix.waitpid [] pid);
              try Sys.remove path with Sys_error _ -> ())
            (fun () ->
              let barrier = Atomic.make 0 in
              let domains =
                Array.init clients (fun c ->
                    Domain.spawn (fun () ->
                        serve_client path ~seed:(1000 + (37 * c)) ~requests
                          ~batch ~laps ~barrier ~clients))
              in
              let per_client = Array.map Domain.join domains in
              (* protocol shutdown so the child exits cleanly *)
              let fd = serve_connect path in
              let oc = Unix.out_channel_of_descr fd in
              set_binary_mode_out oc true;
              Codec.output_frame oc
                (Protocol.encode_request Protocol.Shutdown);
              (try close_out oc with Sys_error _ -> ());
              let row phase lap_idxs =
                let walls =
                  Array.map
                    (fun laps ->
                      List.fold_left
                        (fun acc i -> acc + fst laps.(i))
                        0 lap_idxs)
                    per_client
                in
                let samples =
                  Array.to_list per_client
                  |> List.concat_map (fun laps ->
                         List.concat_map
                           (fun i -> Array.to_list (snd laps.(i)))
                           lap_idxs)
                  |> Array.of_list
                in
                Array.sort compare samples;
                let wall = Array.fold_left Stdlib.max 1 walls in
                let total = requests * clients * List.length lap_idxs in
                {
                  sv_clients = clients;
                  sv_phase = phase;
                  sv_requests = total;
                  sv_batch = batch;
                  sv_wall_ns = wall;
                  sv_reqs_per_s = float_of_int total *. 1e9 /. float_of_int wall;
                  sv_p50_ns = serve_percentile samples 50.;
                  sv_p99_ns = serve_percentile samples 99.;
                }
              in
              [
                row "cold" [ 0 ];
                row "cached" (List.init (laps - 1) (fun i -> i + 1));
              ]))
        [ 1; 2; 4 ]
    in
    Unix.close devnull;
    (* Canary: one fully-decoded batch, every outcome compared against a
       fresh local engine — the load rows above only walk the bytes, so
       this pins that the daemon they hammered was answering correctly. *)
    let check_ok =
      let path = Filename.temp_file "gdpn_b17c" ".sock" in
      Sys.remove path;
      let pid =
        Unix.create_process (gdpd_binary ())
          [|
            gdpd_binary (); "--instances"; "9:2"; "--socket"; path;
            "--workers"; "2";
          |]
          Unix.stdin Unix.stdout Unix.stderr
      in
      Fun.protect
        ~finally:(fun () ->
          (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
          ignore (Unix.waitpid [] pid);
          try Sys.remove path with Sys_error _ -> ())
        (fun () ->
          let client =
            Gdpn_server.Client.connect ~attempts:100
              (Gdpn_server.Server.Unix_sock path)
          in
          Fun.protect ~finally:(fun () -> Gdpn_server.Client.close client)
          @@ fun () ->
          let inst = Family.build ~n:9 ~k:2 in
          let order = Instance.order inst in
          let rng = Faultsim.Stream.Prng.create 4242 in
          let pool =
            List.init 512 (fun _ ->
                let size =
                  Faultsim.Stream.Prng.int rng (inst.Instance.k + 1)
                in
                List.init size (fun _ -> Faultsim.Stream.Prng.int rng order))
          in
          let got = Gdpn_server.Client.solve_batch client ~inst:0 pool in
          let oracle = Engine.create inst in
          List.for_all2
            (fun faults got ->
              Protocol.equal_outcome got
                (Protocol.outcome_of_reconfig
                   (Engine.solve_list oracle ~faults)))
            pool got)
    in
    (rows, check_ok)
  end

let print_serve_rows (rows, check_ok) =
  if rows <> [] then begin
    pf "@.--- B17 companion: gdpd daemon, G(9,2) fleet, wire-level clients \
        ---@.";
    pf "%8s %8s %10s %7s %12s %12s %12s@." "clients" "phase" "requests"
      "batch" "req/s" "p50_us" "p99_us";
    List.iter
      (fun r ->
        pf "%8d %8s %10d %7d %12.0f %12.1f %12.1f@." r.sv_clients r.sv_phase
          r.sv_requests r.sv_batch r.sv_reqs_per_s
          (float_of_int r.sv_p50_ns /. 1e3)
          (float_of_int r.sv_p99_ns /. 1e3))
      rows;
    pf "crosscheck canary (512 fully-decoded batch responses vs local \
        engine): %s@."
      (if check_ok then "ok" else "DIVERGED")
  end

(* ------------------------------------------------------------------ *)
(* B18 companion: the precompiled plan warehouse (PR 10)               *)
(* ------------------------------------------------------------------ *)

type store_compile_row = {
  stc_name : string;
  stc_mode : string;  (** "orbit" or "flat" *)
  stc_records : int;
  stc_sets : int;
  stc_bytes : int;
  stc_compile_ns : int;
}

(* Offline compile cost and on-disk footprint, orbit vs flat, for the
   symmetric families: stc_sets / stc_records is the orbit compression
   the acceptance bar (>= 10x on a symmetric family) reads off. *)
let store_compile_rows () =
  let module Plan_store = Gdpn_engine.Plan_store in
  let one name ?flat ?max_size inst =
    let path = Filename.temp_file "gdpn_b18c" ".store" in
    Fun.protect
      ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
      (fun () ->
        let t0 = Gdpn_obs.Mclock.now_ns () in
        compile_store ?flat ?max_size inst ~path;
        let ns = Gdpn_obs.Mclock.now_ns () - t0 in
        match Plan_store.open_path ~path with
        | Error e -> failwith ("B18 companion: " ^ e)
        | Ok s ->
          let r =
            {
              stc_name = name;
              stc_mode =
                (if Plan_store.orbit_compressed s then "orbit" else "flat");
              stc_records = Plan_store.records s;
              stc_sets = Plan_store.total_sets s;
              stc_bytes = Plan_store.mmap_bytes s;
              stc_compile_ns = ns;
            }
          in
          Plan_store.close s;
          r)
  in
  [
    one "G(9,2) k<=2" (Family.build ~n:9 ~k:2);
    one "G(9,2) k<=2" ~flat:true (Family.build ~n:9 ~k:2);
    one "G(1,5) k<=5" (Small_n.g1 ~k:5);
    one "G(1,5) k<=5" ~flat:true (Small_n.g1 ~k:5);
  ]

let print_store_compile_rows rows =
  pf "@.--- B18 companion: plan-store compile, orbit vs flat ---@.";
  pf "%-16s %7s %9s %11s %13s %11s %12s@." "instance" "mode" "records"
    "fault_sets" "compression" "bytes" "compile_ms";
  List.iter
    (fun r ->
      pf "%-16s %7s %9d %11d %12.1fx %11d %12.1f@." r.stc_name r.stc_mode
        r.stc_records r.stc_sets
        (float_of_int r.stc_sets /. float_of_int (max 1 r.stc_records))
        r.stc_bytes
        (float_of_int r.stc_compile_ns /. 1e6))
    rows

(* Cold-start serving: a gdpd child launched with --store answers its
   very first lap out of the mmap'd warehouse — the B17 machinery, one
   client, with the interesting phase being "cold" (on a storeless
   daemon that lap pays a full solve per distinct mask). *)
let store_daemon_rows () =
  let module Protocol = Gdpn_server.Protocol in
  let module Codec = Gdpn_engine.Codec in
  if not (Sys.file_exists (gdpd_binary ())) then begin
    pf "note: %s not found — skipping store daemon rows@." (gdpd_binary ());
    []
  end
  else begin
    let requests = 65536 and batch = 2048 and laps = 4 in
    let store_path = Filename.temp_file "gdpn_b18s" ".store" in
    compile_store (Family.build ~n:9 ~k:2) ~path:store_path;
    Gc.compact ();
    let devnull = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
    Fun.protect
      ~finally:(fun () ->
        Unix.close devnull;
        try Sys.remove store_path with Sys_error _ -> ())
      (fun () ->
        let path = Filename.temp_file "gdpn_b18" ".sock" in
        Sys.remove path;
        let pid =
          Unix.create_process (gdpd_binary ())
            [|
              gdpd_binary (); "--instances"; "9:2"; "--socket"; path;
              "--workers"; "2"; "--store"; store_path;
            |]
            Unix.stdin devnull devnull
        in
        Fun.protect
          ~finally:(fun () ->
            (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
            ignore (Unix.waitpid [] pid);
            try Sys.remove path with Sys_error _ -> ())
          (fun () ->
            let barrier = Atomic.make 0 in
            let laps_out =
              serve_client path ~seed:1000 ~requests ~batch ~laps ~barrier
                ~clients:1
            in
            let fd = serve_connect path in
            let oc = Unix.out_channel_of_descr fd in
            set_binary_mode_out oc true;
            Codec.output_frame oc (Protocol.encode_request Protocol.Shutdown);
            (try close_out oc with Sys_error _ -> ());
            let row phase lap_idxs =
              let wall =
                List.fold_left (fun acc i -> acc + fst laps_out.(i)) 0 lap_idxs
              in
              let samples =
                List.concat_map
                  (fun i -> Array.to_list (snd laps_out.(i)))
                  lap_idxs
                |> Array.of_list
              in
              Array.sort compare samples;
              let total = requests * List.length lap_idxs in
              {
                sv_clients = 1;
                sv_phase = phase;
                sv_requests = total;
                sv_batch = batch;
                sv_wall_ns = wall;
                sv_reqs_per_s =
                  float_of_int total *. 1e9 /. float_of_int (max 1 wall);
                sv_p50_ns = serve_percentile samples 50.;
                sv_p99_ns = serve_percentile samples 99.;
              }
            in
            [
              row "cold" [ 0 ];
              row "cached" (List.init (laps - 1) (fun i -> i + 1));
            ]))
  end

let print_store_daemon_rows rows =
  if rows <> [] then begin
    pf "@.--- B18 companion: cold-start gdpd with --store, G(9,2) ---@.";
    pf "%8s %8s %10s %7s %12s %12s %12s@." "clients" "phase" "requests"
      "batch" "req/s" "p50_us" "p99_us";
    List.iter
      (fun r ->
        pf "%8d %8s %10d %7d %12.0f %12.1f %12.1f@." r.sv_clients r.sv_phase
          r.sv_requests r.sv_batch r.sv_reqs_per_s
          (float_of_int r.sv_p50_ns /. 1e3)
          (float_of_int r.sv_p99_ns /. 1e3))
      rows
  end

(* ------------------------------------------------------------------ *)
(* JSON emission (hand-rolled: no JSON dependency in the image)        *)
(* ------------------------------------------------------------------ *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_float = function
  | Some f when Float.is_finite f -> Printf.sprintf "%.6g" f
  | Some _ | None -> "null"

let write_json ~path rows stats cmps splices fms advs procs_rows scale
    (serve, serve_check) store_compile store_daemon =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf "  \"pr\": 10,\n";
  Buffer.add_string buf
    "  \"config\": {\"quota_s\": 0.5, \"slow_quota_s\": 2.0, \"limit\": \
     2000, \"bootstrap\": 0},\n";
  Buffer.add_string buf "  \"benchmarks\": [\n";
  List.iteri
    (fun i row ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"name\": \"%s\", \"ns_per_run\": %s, \
            \"minor_words_per_run\": %s, \"r2\": %s}%s\n"
           (json_escape row.row_name)
           (json_float row.ns_per_run)
           (json_float row.minor_words_per_run)
           (json_float row.r2)
           (if i = List.length rows - 1 then "" else ",")))
    rows;
  Buffer.add_string buf "  ],\n";
  Buffer.add_string buf "  \"symmetry_solver_calls\": [\n";
  List.iteri
    (fun i s ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"instance\": \"%s\", \"nodes\": %d, \"k\": %d, \
            \"group_order\": %d, \"fault_sets\": %d, \"full_calls\": %d, \
            \"orbit_calls\": %d, \"reduction\": %s, \"verdicts_equal\": %b}%s\n"
           (json_escape s.stat_name) s.nodes s.stat_k s.group_order
           s.fault_sets s.full_calls s.orbit_calls
           (json_float
              (Some
                 (float_of_int s.full_calls
                 /. float_of_int (max 1 s.orbit_calls))))
           s.verdicts_equal
           (if i = List.length stats - 1 then "" else ",")))
    stats;
  Buffer.add_string buf "  ],\n";
  Buffer.add_string buf "  \"kernel_comparison\": [\n";
  List.iteri
    (fun i c ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"workload\": \"%s\", \"solver_calls\": %d, \
            \"kernel_ns\": %d, \"reference_ns\": %d, \"speedup\": %s, \
            \"expansions_per_run\": %d, \"expansions_equal\": %b, \
            \"reports_equal\": %b}%s\n"
           (json_escape c.cmp_name) c.cmp_solver_calls c.kernel_ns
           c.reference_ns
           (json_float
              (Some
                 (float_of_int c.reference_ns
                 /. float_of_int (max 1 c.kernel_ns))))
           c.cmp_expansions c.expansions_equal c.reports_equal
           (if i = List.length cmps - 1 then "" else ",")))
    cmps;
  Buffer.add_string buf "  ],\n";
  Buffer.add_string buf "  \"splice_comparison\": [\n";
  List.iteri
    (fun i c ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"workload\": \"%s\", \"fault_sets\": %d, \"splices\": %d, \
            \"splice_failures\": %d, \"splice_ns\": %d, \
            \"no_splice_ns\": %d, \"speedup\": %s, \"par1_ns\": %d, \
            \"parn_ns\": %d, \"parn_domains\": %d, \"reports_equal\": %b}%s\n"
           (json_escape c.sp_name) c.sp_sets c.sp_splices c.sp_splice_failures
           c.splice_ns c.no_splice_ns
           (json_float
              (Some
                 (float_of_int c.no_splice_ns
                 /. float_of_int (max 1 c.splice_ns))))
           c.par1_ns c.parn_ns c.parn_domains c.sp_reports_equal
           (if i = List.length splices - 1 then "" else ",")))
    splices;
  Buffer.add_string buf "  ],\n";
  Buffer.add_string buf "  \"fault_model_solver_calls\": [\n";
  List.iteri
    (fun i s ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"instance\": \"%s\", \"model\": \"%s\", \"universe\": %d, \
            \"fault_sets\": %d, \"full_calls\": %d, \"orbit_calls\": %d, \
            \"reduction\": %s, \"failures\": %d, \"paths_agree\": %b}%s\n"
           (json_escape s.fm_name) (json_escape s.fm_model) s.fm_universe
           s.fm_sets s.fm_full_calls s.fm_orbit_calls
           (json_float
              (Some
                 (float_of_int s.fm_full_calls
                 /. float_of_int (max 1 s.fm_orbit_calls))))
           s.fm_failures s.fm_paths_agree
           (if i = List.length fms - 1 then "" else ",")))
    fms;
  Buffer.add_string buf "  ],\n";
  Buffer.add_string buf "  \"colored_adversary_sweep\": [\n";
  List.iteri
    (fun i s ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"model\": \"%s\", \"expansions\": %d, \"evaluations\": %d, \
            \"worst_set\": \"%s\"}%s\n"
           (json_escape s.adv_model) s.adv_expansions s.adv_evaluations
           (json_escape s.adv_faults)
           (if i = List.length advs - 1 then "" else ",")))
    advs;
  Buffer.add_string buf "  ],\n";
  Buffer.add_string buf "  \"out_of_core\": {\n";
  Buffer.add_string buf "    \"procs_rows\": [\n";
  List.iteri
    (fun i r ->
      Buffer.add_string buf
        (Printf.sprintf
           "      {\"row\": \"%s\", \"procs\": %d, \"wall_ns\": %d, \
            \"fault_sets\": %d, \"sets_per_s\": %s, \"ipc_bytes\": %d, \
            \"report_equal\": %b}%s\n"
           (json_escape r.pr_label) r.pr_procs r.pr_wall_ns r.pr_sets
           (json_float (Some r.pr_sets_per_s))
           r.pr_ipc_bytes r.pr_equal
           (if i = List.length procs_rows - 1 then "" else ",")))
    procs_rows;
  Buffer.add_string buf "    ],\n";
  Buffer.add_string buf "    \"scale\": ";
  (match scale with
  | None -> Buffer.add_string buf "null\n"
  | Some s ->
    Buffer.add_string buf
      (Printf.sprintf
         "{\"instance\": \"%s\", \"nodes\": %d, \"k\": %d, \"fault_sets\": \
          %d, \"units\": %d, \"procs\": %d, \"wall_ns\": %d, \
          \"sets_per_s\": %s, \"ipc_bytes\": %d, \"checkpoint_bytes\": %d, \
          \"units_checkpointed\": %d, \"resume_units_kept\": %d, \
          \"resume_wall_ns\": %d, \"resume_report_equal\": %b, \
          \"all_tolerated\": %b}\n"
         (json_escape s.sc_name) s.sc_nodes s.sc_k s.sc_sets s.sc_units
         s.sc_procs s.sc_wall_ns
         (json_float (Some s.sc_sets_per_s))
         s.sc_ipc_bytes s.sc_ckpt_bytes s.sc_units_checkpointed
         s.sc_resume_units_kept s.sc_resume_wall_ns s.sc_resume_equal
         s.sc_all_tolerated));
  Buffer.add_string buf "  },\n";
  Buffer.add_string buf "  \"serve_daemon\": {\n";
  Buffer.add_string buf "    \"rows\": [\n";
  List.iteri
    (fun i r ->
      Buffer.add_string buf
        (Printf.sprintf
           "      {\"clients\": %d, \"phase\": \"%s\", \"requests\": %d, \
            \"batch\": %d, \"wall_ns\": %d, \"reqs_per_s\": %s, \
            \"frame_p50_ns\": %d, \"frame_p99_ns\": %d}%s\n"
           r.sv_clients (json_escape r.sv_phase) r.sv_requests r.sv_batch
           r.sv_wall_ns
           (json_float (Some r.sv_reqs_per_s))
           r.sv_p50_ns r.sv_p99_ns
           (if i = List.length serve - 1 then "" else ",")))
    serve;
  Buffer.add_string buf "    ],\n";
  Buffer.add_string buf
    (Printf.sprintf "    \"crosscheck_ok\": %b\n" serve_check);
  Buffer.add_string buf "  },\n";
  Buffer.add_string buf "  \"plan_store\": {\n";
  Buffer.add_string buf "    \"compile\": [\n";
  List.iteri
    (fun i r ->
      Buffer.add_string buf
        (Printf.sprintf
           "      {\"instance\": \"%s\", \"mode\": \"%s\", \"records\": %d, \
            \"fault_sets\": %d, \"compression\": %s, \"bytes\": %d, \
            \"compile_ns\": %d}%s\n"
           (json_escape r.stc_name) (json_escape r.stc_mode) r.stc_records
           r.stc_sets
           (json_float
              (Some
                 (float_of_int r.stc_sets
                 /. float_of_int (max 1 r.stc_records))))
           r.stc_bytes r.stc_compile_ns
           (if i = List.length store_compile - 1 then "" else ",")))
    store_compile;
  Buffer.add_string buf "    ],\n";
  Buffer.add_string buf "    \"daemon_rows\": [\n";
  List.iteri
    (fun i r ->
      Buffer.add_string buf
        (Printf.sprintf
           "      {\"clients\": %d, \"phase\": \"%s\", \"requests\": %d, \
            \"batch\": %d, \"wall_ns\": %d, \"reqs_per_s\": %s, \
            \"frame_p50_ns\": %d, \"frame_p99_ns\": %d}%s\n"
           r.sv_clients (json_escape r.sv_phase) r.sv_requests r.sv_batch
           r.sv_wall_ns
           (json_float (Some r.sv_reqs_per_s))
           r.sv_p50_ns r.sv_p99_ns
           (if i = List.length store_daemon - 1 then "" else ",")))
    store_daemon;
  Buffer.add_string buf "    ]\n";
  Buffer.add_string buf "  },\n";
  (* Registry state accumulated over the whole benchmark run: solver and
     cache counters give the run a coarse self-audit (e.g. that the
     plan-cache rows actually hit the cache). *)
  Buffer.add_string buf "  \"metrics\": ";
  Buffer.add_string buf
    (Gdpn_obs.Metrics.snapshot_to_json (Gdpn_obs.Metrics.snapshot ()));
  Buffer.add_string buf ",\n";
  Buffer.add_string buf
    "  \"notes\": \"Precompiled plan warehouse (PR 10): plan_store.compile \
     measures the offline compiler (records vs covered fault sets is the \
     orbit compression ratio; G(1,5) exceeds 100x), plan_store.daemon_rows \
     replay the B17 single-client load against a gdpd launched with \
     --store — its cold lap is served from the mmap'd warehouse (zero \
     full solves) instead of solving every distinct mask, and \
     B18-plan-store isolates the per-lookup costs (raw mmap probe, \
     canonicalize+transport, and the engine's trim+solve L2-hit path). \
     B1-construction moved to the stabilized 2 s quota: its rows build \
     whole instances per run and the 0.5 s fits were regression noise \
     (r-squared 0.4-0.6). \
     Plan-serving daemon (PR 9): serve_daemon.rows are \
     end-to-end load tests against a real gdpd child on a Unix socket — \
     1/2/4 lockstep client domains sending pre-encoded Batch frames and \
     structurally validating every response (allocation-free walk), \
     cold = first lap on an empty shard cache, cached = pooled laps \
     2..4; reqs_per_s is total requests / max client wall, \
     frame_p50/p99 are per-frame round-trip latencies pooled across \
     clients. serve_daemon.crosscheck_ok is a separate fully-decoded \
     canary: 512 batched outcomes compared against a fresh local \
     Engine.solve replay (the same determinism pin bench-client \
     --check and make serve-smoke enforce). This host has a single CPU \
     core shared by daemon and clients, so multi-client rows measure \
     protocol efficiency and the sharded cache's read path, not \
     parallel speedup. B17-server isolates the hot pieces: shard-cache \
     hit/miss probes, batch request/response encode/decode, frame \
     checksumming (Adler-32 now defers its mod to 5552-byte chunks and \
     framing no longer copies payloads — checkpoints and verify-worker \
     pipes get this for free). B11's cache-hit row pins that the \
     sharded cache kept the old single-table probe cost. Earlier \
     layers still measured here: out-of-core verification (PR 7, \
     out_of_core.scale: G(333,3), 6,784,885 fault sets through the \
     checkpointed 2-process path and a 70%-truncated resume with \
     identical report), orbit x splice fusion (B16), generalized fault \
     models (PR 6, fault_model_solver_calls), prefix-tree splice-first \
     verification (PR 5, splice_comparison), word-parallel Hamilton \
     kernel (PR 4, kernel_comparison), orbit-reduced node verification \
     (PR 2, symmetry_solver_calls).\"\n";
  Buffer.add_string buf "}\n";
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  pf "wrote %s@." path

let () =
  (* Modes: no args — tables then all benchmarks (the original harness);
     [--only PREFIX] — skip tables, run matching benchmark groups;
     [--json FILE] — skip tables, run benchmarks (filtered by --only if
     given), compute the B12 solver-call stats, write machine-readable
     rows to FILE. *)
  let json_path = ref None in
  let only = ref "" in
  let rec parse = function
    | "--json" :: path :: rest ->
      json_path := Some path;
      parse rest
    | "--only" :: prefix :: rest ->
      only := prefix;
      parse rest
    | [] -> ()
    | arg :: _ ->
      prerr_endline ("usage: main.exe [--json FILE] [--only PREFIX]; got " ^ arg);
      exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  let bench_only = !json_path <> None || !only <> "" in
  pf "gdpn reproduction harness — %s@."
    (if bench_only then "benchmarks" else "tables and benchmarks");
  if not bench_only then tables ();
  let rows = run_benchmarks ~only:!only () in
  (match !json_path with
  | Some path ->
    let stats = symmetry_stats () in
    print_symmetry_stats stats;
    let cmps = kernel_comparison () in
    print_kernel_comparison cmps;
    let splices = splice_comparison () in
    print_splice_comparison splices;
    let fms = fault_model_stats () in
    print_fault_model_stats fms;
    let advs = adversary_sweep () in
    print_adversary_sweep advs;
    let procs_rows = oocore_procs_rows () in
    print_procs_rows procs_rows;
    let scale = oocore_scale () in
    print_scale scale;
    let serve = serve_rows () in
    print_serve_rows serve;
    let store_compile = store_compile_rows () in
    print_store_compile_rows store_compile;
    let store_daemon = store_daemon_rows () in
    print_store_daemon_rows store_daemon;
    write_json ~path rows stats cmps splices fms advs procs_rows scale serve
      store_compile store_daemon
  | None -> ());
  pf "@.done.@."
