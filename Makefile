.PHONY: all build test check bench bench-smoke resume-smoke chaos-smoke \
  serve-smoke store-smoke clean

all: build

build:
	dune build

test:
	dune runtest

# The tier-1 gate plus a multicore engine smoke: exhaustively verify
# G(8,2) (137 fault sets) through Engine.Parallel on two domains (splice
# on and off — reports must agree), then cross-check orbit-reduced
# verification against full enumeration (verdict, counts and
# orbit-expanded failure sets must agree) and splice-first prefix-tree
# enumeration against from-scratch solving (reports must be identical),
# then a traced run whose JSONL output must end with the metrics
# snapshot.  The fault-model lines exercise the generalized universe:
# --crosscheck on the node path also runs the generalized node model and
# exits 3 on any divergence from the legacy enumeration; the mixed-model
# run exits 1 (the constructions are not link-GD — that is the honest
# verdict) but must not exit 3 (crosscheck divergence); --faults checks
# one explicit mixed node+link set end to end.
check: build test
	GDPN_DOMAINS=2 dune exec bin/gdp.exe -- verify -n 8 -k 2
	GDPN_DOMAINS=2 dune exec bin/gdp.exe -- verify -n 8 -k 2 --no-splice
	GDPN_DOMAINS=2 dune exec bin/gdp.exe -- verify -n 8 -k 2 --crosscheck
	GDPN_DOMAINS=2 dune exec bin/gdp.exe -- verify -n 8 -k 2 --symmetry --crosscheck
	GDPN_DOMAINS=2 dune exec bin/gdp.exe -- verify -n 5 -k 2 --model mixed --crosscheck; test $$? -ne 3
	GDPN_DOMAINS=2 dune exec bin/gdp.exe -- verify -n 5 -k 2 --faults "3,7,2-5"; test $$? -ne 2
	GDPN_DOMAINS=2 dune exec bin/gdp.exe -- verify -n 8 -k 2 --symmetry --trace-out /tmp/gdpn-check-trace.jsonl
	tail -1 /tmp/gdpn-check-trace.jsonl | grep -q '"snapshot"'
	dune exec bin/gdp.exe -- verify -n 8 -k 2 --procs 2 --crosscheck
	dune exec bin/gdp.exe -- verify -n 3 -k 5 --procs 2 --symmetry --crosscheck
	$(MAKE) resume-smoke
	$(MAKE) chaos-smoke
	$(MAKE) serve-smoke
	$(MAKE) store-smoke

# Deterministic chaos smoke: seeded multi-year fault storms on G(9,2)
# through all three rate profiles.  Exit 1 = invariant violation (the
# failing run prints its seed and minimal event prefix; replay with
# `gdp chaos --profile P --seed N`); exit 4 = a run failed to exercise
# the required fault kinds beyond plain node death.
chaos-smoke: build
	dune exec bin/gdp.exe -- chaos -n 9 -k 2 --profile chaos --seed 1 \
	  --count 3 --require-kinds node,link,colored,neighbor
	dune exec bin/gdp.exe -- chaos -n 9 -k 2 --profile aggressive --seed 7
	dune exec bin/gdp.exe -- chaos -n 9 -k 2 --profile mild --seed 7

# Kill-and-resume smoke: SIGKILL a checkpointed G(30,4) verification
# (149,986 fault sets, ~4 s) mid-run, resume it, and require the final
# report to be identical to an uninterrupted run's (exit 3 on
# divergence).
resume-smoke: build
	sh scripts/resume_smoke.sh 30 4 1.5

# Daemon smoke: gdpd on a temp Unix socket, a bench-client burst with
# --check (every response compared against a direct Engine.solve replay
# of the same seeded pool; exit 3 on divergence), metrics snapshot
# sanity, protocol shutdown, clean daemon exit.
serve-smoke: build
	sh scripts/serve_smoke.sh 9:2,6:2 2048 128

# Plan-warehouse smoke: compile a G(30,4) store, SIGKILL the compiler
# mid-run and resume from its journal (the resumed store must be
# byte-identical to an uninterrupted compile), then cold-start gdpd
# with a G(9,2) --store and crosscheck a bench-client burst against a
# store-backed local replay (exit 3 on divergence), requiring the cold
# lap to show engine.store_hits in the metrics snapshot.
store-smoke: build
	sh scripts/store_smoke.sh 30 4 3 0.5

bench:
	dune exec bench/main.exe

# Fast bench sanity: one group per recent PR, with the JSON emitter
# (the committed BENCH_PR6.json is regenerated the same way, minus the
# temp path and the group filter).
bench-smoke:
	dune exec bench/main.exe -- --only B12 --json /tmp/gdpn-bench-smoke.json
	dune exec bench/main.exe -- --only B13 --json /tmp/gdpn-bench-smoke-kernel.json
	dune exec bench/main.exe -- --only B14 --json /tmp/gdpn-bench-smoke-splice.json
	dune exec bench/main.exe -- --only B15 --json /tmp/gdpn-bench-smoke-fault-model.json
	dune exec bench/main.exe -- --only B17 --json /tmp/gdpn-bench-smoke-server.json
	dune exec bench/main.exe -- --only B18 --json /tmp/gdpn-bench-smoke-store.json

clean:
	dune clean
