.PHONY: all build test check bench clean

all: build

build:
	dune build

test:
	dune runtest

# The tier-1 gate plus a multicore engine smoke: exhaustively verify
# G(8,2) (137 fault sets) through Engine.Parallel on two domains.
check: build test
	GDPN_DOMAINS=2 dune exec bin/gdp.exe -- verify -n 8 -k 2

bench:
	dune exec bench/main.exe

clean:
	dune clean
