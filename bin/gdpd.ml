(* gdpd — the standalone plan-serving daemon.  One command, the same
   options as [gdp serve] (both front Serve_cli). *)

open Cmdliner

let () =
  let info =
    Cmd.info "gdpd" ~version:"1.0.0"
      ~doc:"Plan-serving daemon for gracefully degradable pipeline networks."
      ~man:
        [
          `S Manpage.s_description;
          `P
            "Preloads a fleet of solution-graph instances and serves \
             reconfiguration plans over a length-prefixed binary protocol \
             (see PROTOCOL.md) from a domain-safe sharded plan cache.  Use \
             $(b,gdp bench-client) to query, load-test or stop it.";
        ]
  in
  exit (Cmd.eval' (Cmd.v info Serve_cli.serve_term))
