(* Shared command-line front end for the plan-serving daemon: the
   standalone [gdpd] binary and [gdp serve] parse the same options and
   run the same Gdpn_server.Server; [gdp bench-client] is the matching
   load generator and crosschecker (exit 3 on divergence, the repo's
   crosscheck convention). *)

open Cmdliner
module Server = Gdpn_server.Server
module Client = Gdpn_server.Client
module Protocol = Gdpn_server.Protocol
module Engine = Gdpn_engine.Engine
module Mclock = Gdpn_obs.Mclock
module Prng = Gdpn_faultsim.Stream.Prng
open Gdpn_core

let pf = Format.printf
let epf = Format.eprintf

(* -------------------- shared options -------------------- *)

let parse_fleet spec =
  let slot s =
    match String.split_on_char ':' (String.trim s) with
    | [ n; k ] -> (int_of_string (String.trim n), int_of_string (String.trim k))
    | _ -> failwith "slot"
  in
  match String.split_on_char ',' spec |> List.map slot with
  | [] -> Error (`Msg "empty fleet")
  | slots -> Ok slots
  | exception _ ->
    Error (`Msg (Printf.sprintf "bad fleet spec %S (expected N:K[,N:K...])" spec))

let fleet_arg =
  Arg.(value & opt string "9:2"
       & info [ "instances" ] ~docv:"FLEET"
           ~doc:"Comma-separated $(b,N:K) fleet slots, preloaded and served \
                 as instance ids 0, 1, ... in order.")

let socket_arg =
  Arg.(value & opt (some string) None
       & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket path.")

let port_arg =
  Arg.(value & opt (some int) None
       & info [ "port" ] ~docv:"PORT"
           ~doc:"TCP port on loopback (ignored when $(b,--socket) is given).")

let listen_of socket port =
  match (socket, port) with
  | Some path, _ -> Ok (Server.Unix_sock path)
  | None, Some port -> Ok (Server.Tcp port)
  | None, None -> Error "one of --socket or --port is required"

let pp_listen = function
  | Server.Unix_sock path -> path
  | Server.Tcp port -> Printf.sprintf "localhost:%d" port

(* -------------------- serve -------------------- *)

let serve_run fleet socket port workers queue warm budget cache_limit
    no_shutdown store =
  match (parse_fleet fleet, listen_of socket port) with
  | Error (`Msg e), _ | _, Error e ->
    epf "gdpd: %s@." e;
    2
  | Ok instances, Ok listen -> (
    let cfg =
      {
        Server.instances;
        listen;
        workers;
        max_queue = queue;
        warm;
        budget;
        cache_limit;
        allow_shutdown = not no_shutdown;
        store;
      }
    in
    match
      Server.run cfg ~ready:(fun () ->
          pf "gdpd: serving %d instance(s) on %s with %d worker domain(s)%s@."
            (List.length instances) (pp_listen listen) workers
            (match store with
            | [] -> ""
            | l -> Printf.sprintf " (%d plan store(s) mmap'd)" (List.length l)))
    with
    | () ->
      pf "gdpd: shut down cleanly@.";
      0
    | exception Invalid_argument e ->
      epf "gdpd: %s@." e;
      2)

let serve_term =
  let workers_arg =
    Arg.(value & opt int 2
         & info [ "workers" ] ~docv:"W" ~doc:"Worker domains serving requests.")
  in
  let queue_arg =
    Arg.(value & opt int 64
         & info [ "queue" ] ~docv:"Q"
             ~doc:"Accepted-connection queue bound (backpressure).")
  in
  let warm_arg =
    Arg.(value & opt int 0
         & info [ "warm" ] ~docv:"S"
             ~doc:"Pre-solve every fault set of size up to $(docv) per \
                   instance before serving.")
  in
  let budget_arg =
    Arg.(value & opt (some int) None
         & info [ "budget" ] ~docv:"B" ~doc:"Solver expansion budget per solve.")
  in
  let cache_limit_arg =
    Arg.(value & opt (some int) None
         & info [ "cache-limit" ] ~docv:"N"
             ~doc:"Plan-cache bound per instance (oldest-first eviction).")
  in
  let no_shutdown_arg =
    Arg.(value & flag
         & info [ "no-shutdown" ]
             ~doc:"Refuse the protocol's shutdown request (kill the process \
                   to stop).")
  in
  let store_arg =
    Arg.(value & opt_all string []
         & info [ "store" ] ~docv:"FILE"
             ~doc:"Mmap the precompiled plan store at $(docv) (repeatable) \
                   and attach it to the fleet engine it was compiled for — \
                   the L2 tier under the RAM cache, so a cold daemon serves \
                   its first lap at store speed instead of re-solving.")
  in
  Term.(const serve_run $ fleet_arg $ socket_arg $ port_arg $ workers_arg
        $ queue_arg $ warm_arg $ budget_arg $ cache_limit_arg $ no_shutdown_arg
        $ store_arg)

let serve_doc = "Serve reconfiguration plans over the gdpd binary protocol."

(* -------------------- bench-client -------------------- *)

(* Deterministic request pool: [count] fault masks of size 0..max_faults
   drawn from one seeded Prng — the crosscheck replays the identical
   pool through a local engine, and two bench-client runs with one seed
   load the server identically. *)
let make_pool ~seed ~count ~order ~max_faults =
  let rng = Prng.create seed in
  let draw_mask () =
    let size = Prng.int rng (max_faults + 1) in
    let rec draw acc n =
      if n = 0 then List.rev acc
      else
        let v = Prng.int rng order in
        if List.mem v acc then draw acc n else draw (v :: acc) (n - 1)
    in
    draw [] (min size order)
  in
  Array.init count (fun _ -> draw_mask ())

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0
  else sorted.(min (n - 1) (int_of_float (ceil (p /. 100. *. float n)) - 1 |> max 0))

type lap_stats = {
  ls_lap : int;
  ls_requests : int;
  ls_wall_ns : int;
  ls_frames : int;
  ls_p50_ns : int;
  ls_p99_ns : int;
}

let reqs_per_s ls =
  if ls.ls_wall_ns = 0 then 0.
  else float ls.ls_requests *. 1e9 /. float ls.ls_wall_ns

let pp_lap batch ls =
  pf "lap %d (%s): %d reqs in %.2f ms -> %.0f req/s; frame p50=%.1fus p99=%.1fus (batch %d)@."
    ls.ls_lap
    (if ls.ls_lap = 1 then "cold" else "cached")
    ls.ls_requests
    (float ls.ls_wall_ns /. 1e6)
    (reqs_per_s ls)
    (float ls.ls_p50_ns /. 1e3)
    (float ls.ls_p99_ns /. 1e3)
    batch

let lap_json batch ls =
  Printf.sprintf
    "{\"lap\": %d, \"cached\": %b, \"requests\": %d, \"batch\": %d, \
     \"wall_ns\": %d, \"reqs_per_s\": %.0f, \"frame_p50_ns\": %d, \
     \"frame_p99_ns\": %d}"
    ls.ls_lap (ls.ls_lap > 1) ls.ls_requests batch ls.ls_wall_ns (reqs_per_s ls)
    ls.ls_p50_ns ls.ls_p99_ns

(* Send the pool through the connection in [batch]-sized frames,
   recording one wall-clock sample per frame.  Returns the responses in
   request order plus the lap's stats. *)
let run_lap client ~inst ~batch ~lap pool =
  let n = Array.length pool in
  let out = ref [] in
  let samples = ref [] in
  let nframes = ref 0 in
  let start = Mclock.now_ns () in
  let i = ref 0 in
  while !i < n do
    let hi = min n (!i + batch) in
    let masks = Array.to_list (Array.sub pool !i (hi - !i)) in
    let t0 = Mclock.now_ns () in
    let os =
      if batch = 1 then [ Client.solve client ~inst (List.hd masks) ]
      else Client.solve_batch client ~inst masks
    in
    samples := (Mclock.now_ns () - t0) :: !samples;
    incr nframes;
    out := List.rev_append os !out;
    i := hi
  done;
  let wall = Mclock.now_ns () - start in
  let sorted = Array.of_list !samples in
  Array.sort compare sorted;
  ( List.rev !out,
    {
      ls_lap = lap;
      ls_requests = n;
      ls_wall_ns = wall;
      ls_frames = !nframes;
      ls_p50_ns = percentile sorted 50.;
      ls_p99_ns = percentile sorted 99.;
    } )

let bench_client_run socket port inst requests batch laps max_faults seed check
    store stats json shutdown =
  match listen_of socket port with
  | Error e ->
    epf "gdp bench-client: %s@." e;
    2
  | Ok listen -> (
    match Client.connect ~attempts:40 listen with
    | exception (Unix.Unix_error _ as e) ->
      epf "gdp bench-client: cannot connect to %s (%s)@." (pp_listen listen)
        (Printexc.to_string e);
      2
    | client ->
      let infos = Client.hello client in
      if inst < 0 || inst >= List.length infos then begin
        epf "gdp bench-client: instance %d not in the fleet (%d slots)@." inst
          (List.length infos);
        Client.close client;
        2
      end
      else begin
        let info = List.nth infos inst in
        let order = info.Protocol.i_order in
        let max_faults =
          match max_faults with Some f -> f | None -> info.Protocol.i_k
        in
        let pool = make_pool ~seed ~count:requests ~order ~max_faults in
        (* The local oracle replays the identical sequence through a
           fresh engine with default parameters: responses must be
           byte-identical (same verdicts, same node sequences).  When
           the daemon serves from a plan store, the oracle attaches the
           same store — orbit-transported plans are deterministic but
           not the bytes a storeless solve would pick, so byte-identity
           is against the same L1 -> store -> solve tiering. *)
        let oracle =
          if not check then None
          else
            Some
              (Engine.create
                 (Family.build ~n:info.Protocol.i_n ~k:info.Protocol.i_k))
        in
        let store_err =
          match (oracle, store) with
          | Some engine, Some path -> (
            match Engine.attach_store engine ~path with
            | Ok () -> None
            | Error e -> Some e)
          | _ -> None
        in
        match store_err with
        | Some e ->
          epf "gdp bench-client: cannot attach oracle store: %s@." e;
          Client.close client;
          2
        | None ->
        let divergences = ref 0 in
        let batch = max 1 batch in
        let stats_list = ref [] in
        for lap = 1 to max 1 laps do
          let responses, ls = run_lap client ~inst ~batch ~lap pool in
          (match oracle with
          | None -> ()
          | Some engine ->
            List.iteri
              (fun i got ->
                let faults = pool.(i) in
                let want =
                  Protocol.outcome_of_reconfig
                    (Engine.solve_list engine ~faults)
                in
                if not (Protocol.equal_outcome got want) then begin
                  incr divergences;
                  if !divergences <= 5 then
                    epf "DIVERGENCE lap %d req %d faults=[%s]: server %a, local %a@."
                      lap i
                      (String.concat "," (List.map string_of_int faults))
                      Protocol.pp_outcome got Protocol.pp_outcome want
                end)
              responses);
          if not json then pp_lap batch ls;
          stats_list := ls :: !stats_list
        done;
        if json then
          pf "{\"laps\": [%s], \"divergences\": %d}@."
            (String.concat ", " (List.rev_map (lap_json batch) !stats_list))
            !divergences;
        if stats then begin
          let snap = Client.metrics client in
          pf "%s@." snap
        end;
        if shutdown then Client.shutdown client;
        Client.close client;
        if check && !divergences > 0 then begin
          epf "gdp bench-client: %d divergence(s) from direct Engine.solve@."
            !divergences;
          3
        end
        else 0
      end)

let bench_client_term =
  let inst_arg =
    Arg.(value & opt int 0
         & info [ "inst" ] ~docv:"ID" ~doc:"Fleet instance id to query.")
  in
  let requests_arg =
    Arg.(value & opt int 4096
         & info [ "requests" ] ~docv:"R" ~doc:"Requests per lap.")
  in
  let batch_arg =
    Arg.(value & opt int 256
         & info [ "batch" ] ~docv:"B"
             ~doc:"Requests per protocol frame (1 sends single solves).")
  in
  let laps_arg =
    Arg.(value & opt int 2
         & info [ "laps" ] ~docv:"L"
             ~doc:"Laps over the request pool: lap 1 is cold, later laps are \
                   served from the plan cache.")
  in
  let max_faults_arg =
    Arg.(value & opt (some int) None
         & info [ "max-faults" ] ~docv:"F"
             ~doc:"Largest fault-mask size in the pool (default: the \
                   instance's k).")
  in
  let seed_arg =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Pool PRNG seed.")
  in
  let check_arg =
    Arg.(value & flag
         & info [ "check" ]
             ~doc:"Replay the pool through a local engine and compare every \
                   response; exit 3 on divergence.")
  in
  let store_arg =
    Arg.(value & opt (some string) None
         & info [ "store" ] ~docv:"FILE"
             ~doc:"With $(b,--check): attach the plan store at $(docv) to \
                   the local oracle engine, mirroring a daemon started with \
                   $(b,--store) so responses stay byte-comparable.")
  in
  let stats_arg =
    Arg.(value & flag
         & info [ "stats" ] ~doc:"Fetch and print the server metrics snapshot.")
  in
  let json_arg =
    Arg.(value & flag
         & info [ "json" ] ~doc:"Emit lap stats as one JSON object.")
  in
  let shutdown_arg =
    Arg.(value & flag
         & info [ "shutdown" ] ~doc:"Send a shutdown request before closing.")
  in
  Term.(const bench_client_run $ socket_arg $ port_arg $ inst_arg
        $ requests_arg $ batch_arg $ laps_arg $ max_faults_arg $ seed_arg
        $ check_arg $ store_arg $ stats_arg $ json_arg $ shutdown_arg)

let bench_client_doc =
  "Load-test a gdpd daemon; optionally crosscheck against direct solves."
