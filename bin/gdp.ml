(* gdp — command-line interface to the gracefully-degradable pipeline
   network library.

   Subcommands:
     build     construct an instance, print its summary, optionally emit DOT
     solve     reconfigure around a fault set and print the pipeline
     verify    exhaustively or randomly verify k-graceful-degradability
     table     print a theorem degree table
     compare   run the prior-work comparison (E12)
     simulate  stream a workload through the network under fault injection
     chaos     deterministic multi-year fault storm with invariant checks
     figure    regenerate a paper figure as a DOT file
     impossibility  run the Lemma 3.14 machine check *)

open Cmdliner
open Gdpn_core
module Faultsim = Gdpn_faultsim
module Engine = Gdpn_engine.Engine
module Compare = Gdpn_baselines.Compare
module Hayes = Gdpn_baselines.Hayes
module Spares = Gdpn_baselines.Spares
module Metrics = Gdpn_obs.Metrics
module Span = Gdpn_obs.Span

let pf = Format.printf

(* Run [f] with the span sink pointed at [path] (when given); on the way
   out, append the final metrics snapshot so the trace file carries its
   own totals, then restore the null sink. *)
let with_trace trace_out f =
  match trace_out with
  | None -> f ()
  | Some path ->
    Span.set_jsonl path;
    Fun.protect
      ~finally:(fun () ->
        Span.emit_snapshot (Metrics.snapshot ());
        Span.close ();
        pf "wrote trace to %s@." path)
      f

let trace_out_arg =
  Arg.(value & opt (some string) None & info [ "trace-out" ] ~docv:"FILE"
         ~doc:"Write a JSONL span trace to $(docv); the last line is a \
               snapshot of the metrics registry.")

(* -------------------- shared arguments -------------------- *)

let n_arg =
  Arg.(required & opt (some int) None & info [ "n" ] ~docv:"N"
         ~doc:"Guaranteed pipeline length (number of processors).")

let k_arg =
  Arg.(required & opt (some int) None & info [ "k" ] ~docv:"K"
         ~doc:"Fault tolerance (maximum number of faults).")

let merged_arg =
  Arg.(value & flag & info [ "merged" ]
         ~doc:"Apply the merged-terminal transform (fault-free I/O model).")

let faults_arg =
  Arg.(value & opt (list int) [] & info [ "faults" ] ~docv:"IDS"
         ~doc:"Comma-separated faulty node ids.")

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")

let out_arg =
  Arg.(value & opt (some string) None & info [ "out"; "o" ] ~docv:"FILE"
         ~doc:"Write DOT output to $(docv).")

let build_instance n k merged =
  let inst = Family.build ~n ~k in
  if merged then Merge.apply inst else inst

let model_arg =
  Arg.(value & opt string "node" & info [ "model" ] ~docv:"MODEL"
         ~doc:"Fault model: $(b,node) (the paper's, default), $(b,mixed) \
               (nodes and links), $(b,colored) (per-node shared-resource \
               link classes) or $(b,neighbor) (closed neighborhoods).")

let model_of_name inst name =
  match Fault_model.of_name inst name with
  | Some m -> Ok m
  | None ->
    Error
      (Printf.sprintf
         "unknown fault model %S (expected node, mixed, colored or neighbor)"
         name)

(* -------------------- build -------------------- *)

let build_cmd =
  let run n k merged out =
    let inst = build_instance n k merged in
    pf "%a@." Instance.pp inst;
    pf "standard: %b   node-optimal: %b   degree-optimal: %b@."
      (Instance.is_standard inst)
      (Instance.is_node_optimal inst)
      (Bounds.is_degree_optimal inst);
    (match out with
    | Some path ->
      Gdpn_graph.Dot.save ~path (Instance.to_dot inst);
      pf "wrote %s@." path
    | None -> ());
    0
  in
  Cmd.v (Cmd.info "build" ~doc:"Construct a solution graph.")
    Term.(const run $ n_arg $ k_arg $ merged_arg $ out_arg)

(* -------------------- solve -------------------- *)

let solve_cmd =
  let run n k merged faults out =
    let inst = build_instance n k merged in
    match Reconfig.solve_list inst ~faults with
    | Reconfig.Pipeline p ->
      let p = Pipeline.normalise inst p in
      pf "pipeline: %a@." Pipeline.pp p;
      pf "processors used: %d (all healthy processors)@."
        (Pipeline.processor_count p);
      (match out with
      | Some path ->
        Gdpn_graph.Dot.save ~path
          (Instance.to_dot ~faults ~pipeline:p.Pipeline.nodes inst);
        pf "wrote %s@." path
      | None -> ());
      0
    | Reconfig.No_pipeline ->
      pf "no pipeline exists for this fault set@.";
      1
    | Reconfig.Gave_up ->
      pf "solver budget exhausted@.";
      2
  in
  Cmd.v
    (Cmd.info "solve" ~doc:"Reconfigure around a fault set.")
    Term.(const run $ n_arg $ k_arg $ merged_arg $ faults_arg $ out_arg)

(* -------------------- verify -------------------- *)

(* Verification over a generalized fault universe
   (--model mixed|colored|neighbor); the node model keeps the legacy
   path in [verify_cmd] untouched. *)
let verify_model inst model ~sample ~domains ~seed ~symmetry ~crosscheck
    ~no_splice ~merged =
  let module Auto = Gdpn_graph.Auto in
  pf "%a@." Instance.pp inst;
  if merged then
    pf "note: --merged fault restriction applies to the node model only@.";
  let d =
    match domains with Some d -> d | None -> Engine.Parallel.default_domains ()
  in
  pf "fault model: %s (universe %d elements, sets of size <= %d)@."
    (Fault_model.name model) (Fault_model.size model)
    (Fault_model.max_faults model);
  let group =
    if symmetry then begin
      let g = Instance.symmetry inst in
      let induced = Fault_model.induced_symmetry model g in
      pf "symmetry: node group order %d; induced action on the universe \
          %s@."
        (Auto.order g)
        (if Auto.is_trivial induced then "trivial — plain enumeration"
         else "nontrivial — orbit reduction");
      Some g
    end
    else None
  in
  let report =
    match sample with
    | Some trials ->
      if symmetry then pf "note: --symmetry applies to exhaustive mode only@.";
      pf "sampled verification: seed=%d domains=%d@." seed d;
      Engine.Parallel.verify_sampled_model ~seed ~trials ~domains:d model
    | None ->
      pf "exhaustive verification: domains=%d@." d;
      Engine.Parallel.verify_exhaustive_model ~domains:d ?symmetry:group
        ~splice:(not no_splice) model
  in
  (* Verify.pp_report renders fault sets as raw node ids; under a model the
     indices are universe elements, so render them in element syntax. *)
  pf "checked %d fault sets%s: %s@." report.Verify.fault_sets_checked
    (if report.Verify.solver_calls < report.Verify.fault_sets_checked then
       Printf.sprintf " (%d orbit representatives solved)"
         report.Verify.solver_calls
     else "")
    (if Verify.is_k_gd report then "all tolerated"
     else
       Printf.sprintf "%d failures%s%s"
         (List.length report.Verify.failures)
         (match report.Verify.failures with
         | f :: _ ->
           Printf.sprintf " (first: %s%s — %s)"
             (Fault_model.describe model f.Verify.faults)
             (if f.Verify.orbit > 1 then
                Printf.sprintf " ×%d orbit" f.Verify.orbit
              else "")
             f.Verify.reason
         | [] -> "")
         (if report.Verify.gave_up > 0 then
            Printf.sprintf " (%d gave up)" report.Verify.gave_up
          else ""));
  if report.Verify.solver_calls < report.Verify.fault_sets_checked then
    pf "orbit reduction: %d solver calls covered %d fault sets (%.1fx \
        fewer)@."
      report.Verify.solver_calls report.Verify.fault_sets_checked
      (float_of_int report.Verify.fault_sets_checked
      /. float_of_int (max 1 report.Verify.solver_calls));
  List.iteri
    (fun i f ->
      if i < 5 then
        pf "counterexample: %s — %s@."
          (Fault_model.describe model f.Verify.faults)
          f.Verify.reason)
    report.Verify.failures;
  (* All generalized enumeration paths must agree with each other: splice
     vs from-scratch sequentially, and the work-stealing shards vs both. *)
  let crosscheck_failed =
    if crosscheck && sample = None then begin
      let cap = 1_000_000 in
      let spliced =
        Verify.exhaustive_model ~max_failures:cap ?symmetry:group
          ~splice:true model
      in
      let scratch =
        Verify.exhaustive_model ~max_failures:cap ?symmetry:group
          ~splice:false model
      in
      let par =
        Engine.Parallel.verify_exhaustive_model ~max_failures:cap ~domains:d
          ?symmetry:group ~splice:(not no_splice) model
      in
      let agree = spliced = scratch && spliced = par in
      pf "crosscheck model splice vs from-scratch vs parallel: %s (%d \
          sets)@."
        (if agree then "PASS" else "FAIL")
        spliced.Verify.fault_sets_checked;
      not agree
    end
    else begin
      if crosscheck then pf "note: --crosscheck requires exhaustive mode@.";
      false
    end
  in
  if crosscheck_failed then 3 else if Verify.is_k_gd report then 0 else 1

(* Out-of-core verification: --procs / --checkpoint / --resume route the
   run through the first-class task decomposition
   ([Engine.Parallel.Task]), optionally farmed over worker processes
   ([Mp.run] spawning `gdp verify-worker` children) and/or streamed to a
   resumable checkpoint file.  Both the resumed and the multi-process
   reports are byte-identical to the sequential one — the deterministic
   rank merge is the same in every topology — which --crosscheck verifies
   directly (exit 3 on divergence). *)
let verify_oocore inst model ~model_name ~n ~k ~domains ~procs ~ckpt_path
    ~resume_path ~symmetry ~crosscheck ~no_splice ~sample ~merged =
  let module Auto = Gdpn_graph.Auto in
  let module Task = Engine.Parallel.Task in
  let module Checkpoint = Gdpn_engine.Checkpoint in
  let module Mp = Gdpn_engine.Mp in
  if sample <> None then begin
    pf "error: --procs/--checkpoint/--resume require exhaustive mode@.";
    2
  end
  else if merged then begin
    pf "error: --merged restricts the fault universe to the sequential \
        path; it cannot be checkpointed or farmed over processes@.";
    2
  end
  else if ckpt_path <> None && resume_path <> None then begin
    pf "error: --resume already appends to its own file; give one of \
        --checkpoint/--resume@.";
    2
  end
  else begin
    let max_failures = 5 in
    let is_node = Fault_model.is_node model in
    pf "%a@." Instance.pp inst;
    if not is_node then
      pf "fault model: %s (universe %d elements, sets of size <= %d)@."
        (Fault_model.name model) (Fault_model.size model)
        (Fault_model.max_faults model);
    let group =
      if symmetry then begin
        let g = Instance.symmetry inst in
        pf "symmetry: group order %d — orbit-reduced units in DFS preorder \
            (orbit x splice fusion)@."
          (Auto.order g);
        Some g
      end
      else None
    in
    let task =
      if is_node then
        Task.exhaustive ?symmetry:group ~splice:(not no_splice) inst
      else Task.exhaustive_model ?symmetry:group ~splice:(not no_splice) model
    in
    let header = Task.header task ~max_failures in
    let nunits = Task.nunits task in
    let resume_state =
      match resume_path with
      | None -> Ok None
      | Some path -> (
        match Checkpoint.load ~path with
        | Error e -> Error e
        | Ok l -> (
          match
            Checkpoint.check_header ~expected:header l.Checkpoint.l_header
          with
          | Error e -> Error e
          | Ok () -> Ok (Some l)))
    in
    match resume_state with
    | Error e ->
      pf "error: cannot resume: %s@." e;
      2
    | Ok loaded ->
      let resumed = Option.map (fun l -> l.Checkpoint.l_results) loaded in
      Option.iter
        (fun l ->
          pf "resume: %d/%d units already recorded%s%s@."
            (Hashtbl.length l.Checkpoint.l_results)
            nunits
            (if l.Checkpoint.l_duplicates > 0 then
               Printf.sprintf ", %d duplicate records dropped"
                 l.Checkpoint.l_duplicates
             else "")
            (if l.Checkpoint.l_torn_bytes > 0 then
               Printf.sprintf ", %d torn trailing bytes discarded"
                 l.Checkpoint.l_torn_bytes
             else ""))
        loaded;
      let writer =
        match (ckpt_path, resume_path) with
        | Some path, _ -> Some (Checkpoint.create ~path header)
        | None, Some path -> Some (Checkpoint.open_append ~path)
        | None, None -> None
      in
      let run_report () =
        Fun.protect
          ~finally:(fun () -> Option.iter Checkpoint.close writer)
        @@ fun () ->
        if procs > 1 then begin
          let argv =
            Array.of_list
              ([
                 Sys.executable_name; "verify-worker"; "-n"; string_of_int n;
                 "-k"; string_of_int k; "--model"; model_name;
                 "--max-failures"; string_of_int max_failures;
               ]
              @ (if symmetry then [ "--symmetry" ] else [])
              @ if no_splice then [ "--no-splice" ] else [])
          in
          pf "multi-process verification: procs=%d units=%d@." procs nunits;
          Mp.run ~max_failures ~procs ~argv ?checkpoint:writer ?resumed task
        end
        else begin
          let d =
            match domains with
            | Some d -> d
            | None -> Engine.Parallel.default_domains ()
          in
          pf "checkpointed verification: domains=%d units=%d@." d nunits;
          Engine.Parallel.run_task ~max_failures ~domains:d ?checkpoint:writer
            ?resumed task
        end
      in
      (match run_report () with
      | exception Mp.Worker_died pid ->
        pf "error: worker process %d died with a unit still assigned@." pid;
        2
      | report ->
        (match ckpt_path with
        | Some p -> pf "checkpoint: %s@." p
        | None -> ());
        (if is_node then pf "%a@." Verify.pp_report report
         else
           pf "checked %d fault sets: %s@." report.Verify.fault_sets_checked
             (if Verify.is_k_gd report then "all tolerated"
              else
                Printf.sprintf "%d failures (first: %s — %s)"
                  (List.length report.Verify.failures)
                  (match report.Verify.failures with
                  | f :: _ -> Fault_model.describe model f.Verify.faults
                  | [] -> "?")
                  (match report.Verify.failures with
                  | f :: _ -> f.Verify.reason
                  | [] -> "")));
        if report.Verify.solver_calls < report.Verify.fault_sets_checked then
          pf "orbit reduction: %d solver calls covered %d fault sets \
              (%.1fx fewer)@."
            report.Verify.solver_calls report.Verify.fault_sets_checked
            (float_of_int report.Verify.fault_sets_checked
            /. float_of_int (max 1 report.Verify.solver_calls));
        let crosscheck_failed =
          if crosscheck then begin
            let seq =
              if is_node then
                Verify.exhaustive ~max_failures ?symmetry:group
                  ~splice:(not no_splice) inst
              else
                Verify.exhaustive_model ~max_failures ?symmetry:group
                  ~splice:(not no_splice) model
            in
            let agree = report = seq in
            pf "crosscheck out-of-core vs sequential: %s (%d sets, %d \
                solver calls)@."
              (if agree then "PASS" else "FAIL")
              seq.Verify.fault_sets_checked seq.Verify.solver_calls;
            not agree
          end
          else false
        in
        if crosscheck_failed then 3
        else if Verify.is_k_gd report then 0
        else 1)
  end

let verify_cmd =
  let sample_arg =
    Arg.(value & opt (some int) None & info [ "sample" ] ~docv:"TRIALS"
           ~doc:"Random sampling instead of exhaustive enumeration.")
  in
  let domains_arg =
    Arg.(value & opt (some int) None & info [ "domains" ] ~docv:"D"
           ~doc:"Verify in parallel over $(docv) OCaml domains (default: the \
                 GDPN_DOMAINS environment variable, else the recommended \
                 domain count).")
  in
  let symmetry_arg =
    Arg.(value & flag & info [ "symmetry" ]
           ~doc:"Orbit-reduced exhaustive verification: compute the \
                 instance's solvability-preserving symmetry group and solve \
                 only one fault set per orbit.")
  in
  let crosscheck_arg =
    Arg.(value & flag & info [ "crosscheck" ]
           ~doc:"Exhaustive mode: re-run the enumeration with splice-first \
                 prefix-tree solving disabled and compare the reports, \
                 then re-run through the reference (pre-bitset-row) \
                 backtracker and compare reports and expansion counts \
                 against the word-parallel kernel.  With --symmetry, \
                 additionally run the full enumeration and compare \
                 verdicts, counts and (orbit-expanded) failure sets.  \
                 Exits 3 on any disagreement.")
  in
  let no_splice_arg =
    Arg.(value & flag & info [ "no-splice" ]
           ~doc:"Disable splice-first prefix-tree solving: every fault set \
                 is solved from scratch (the pre-splice behaviour; mainly \
                 for benchmarking and crosschecks).")
  in
  let procs_arg =
    Arg.(value & opt int 0 & info [ "procs" ] ~docv:"P"
           ~doc:"Farm the exhaustive enumeration over $(docv) worker \
                 processes ($(b,gdp verify-worker) children over pipes). \
                 The report is byte-identical to the sequential one.")
  in
  let checkpoint_arg =
    Arg.(value & opt (some string) None & info [ "checkpoint" ] ~docv:"FILE"
           ~doc:"Append one compact binary record per drained work unit to \
                 $(docv); an interrupted run resumes with $(b,--resume).")
  in
  let resume_arg =
    Arg.(value & opt (some string) None & info [ "resume" ] ~docv:"FILE"
           ~doc:"Resume an interrupted $(b,--checkpoint) run: recorded \
                 units are skipped, new ones keep appending to $(docv), \
                 and the final report is byte-identical to an \
                 uninterrupted run's (any --domains/--procs).")
  in
  let fault_set_arg =
    Arg.(value & opt (some string) None & info [ "faults" ] ~docv:"SET"
           ~doc:"Check one explicit fault set instead of enumerating: \
                 comma-separated fault elements in the model's syntax — \
                 node $(b,3), link $(b,2-5), colour class $(b,c4), \
                 neighborhood $(b,n7).  Link elements without an explicit \
                 $(b,--model) switch to the mixed model.  Prints the \
                 pipeline found or the counterexample.")
  in
  (* --faults: one explicit fault set, parsed in the model's element
     syntax, checked against the (link-degraded) instance. *)
  let check_fault_spec inst model spec =
    let tokens =
      List.filter
        (fun s -> s <> "")
        (List.map String.trim (String.split_on_char ',' spec))
    in
    let rec parse_all acc = function
      | [] -> Ok (List.rev acc)
      | tok :: rest -> (
        match Fault_model.parse_elt tok with
        | None -> Error (Printf.sprintf "cannot parse fault element %S" tok)
        | Some e -> parse_all (e :: acc) rest)
    in
    match parse_all [] tokens with
    | Error e ->
      pf "error: %s@." e;
      2
    | Ok elts -> (
      (* `gdp verify --faults 3,7,2-5` without --model means the mixed
         model: a link element cannot be a node fault. *)
      let model =
        if
          Fault_model.is_node model
          && List.exists
               (function Fault_model.Link _ -> true | _ -> false)
               elts
        then begin
          pf "link faults present: using the mixed fault model@.";
          Fault_model.mixed inst
        end
        else model
      in
      let rec index_all acc = function
        | [] -> Ok (List.rev acc)
        | e :: rest -> (
          match Fault_model.index_of model e with
          | Some i -> index_all (i :: acc) rest
          | None ->
            Error
              (Printf.sprintf "%s is not in the %s fault universe"
                 (Fault_model.elt_to_string e)
                 (Fault_model.name model)))
      in
      match index_all [] elts with
      | Error e ->
        pf "error: %s@." e;
        2
      | Ok indices -> (
        match Verify.check_model_set model indices with
        | Ok p ->
          pf "fault set %s tolerated (%s model)@."
            (Fault_model.describe model indices)
            (Fault_model.name model);
          pf "pipeline: %a@." Pipeline.pp p;
          0
        | Error e ->
          pf "fault set %s NOT tolerated (%s model): %s@."
            (Fault_model.describe model indices)
            (Fault_model.name model) e;
          1))
  in
  let run n k merged model_name fault_spec sample domains seed symmetry
      crosscheck no_splice procs ckpt_path resume_path trace_out =
    with_trace trace_out @@ fun () ->
    let module Auto = Gdpn_graph.Auto in
    let inst = build_instance n k merged in
    match model_of_name inst model_name with
    | Error e ->
      pf "error: %s@." e;
      2
    | Ok model when fault_spec <> None ->
      check_fault_spec inst model (Option.get fault_spec)
    | Ok model when procs > 1 || ckpt_path <> None || resume_path <> None ->
      verify_oocore inst model ~model_name ~n ~k ~domains ~procs ~ckpt_path
        ~resume_path ~symmetry ~crosscheck ~no_splice ~sample ~merged
    | Ok model when not (Fault_model.is_node model) ->
      verify_model inst model ~sample ~domains ~seed ~symmetry ~crosscheck
        ~no_splice ~merged
    | Ok model ->
    pf "%a@." Instance.pp inst;
    let d =
      match domains with Some d -> d | None -> Engine.Parallel.default_domains ()
    in
    (* The merged transform restricts faults to processors; terminals are
       fault-free in that model. *)
    let universe = if merged then Some (Instance.processors inst) else None in
    let group =
      if symmetry then begin
        let g = Instance.symmetry inst in
        pf "symmetry: group order %d, %d generators%s@." (Auto.order g)
          (List.length (Auto.generators g))
          (if Auto.is_trivial g then
             " — trivial group, using plain enumeration"
           else "");
        Some g
      end
      else None
    in
    let report =
      match sample with
      | Some trials ->
        if symmetry then
          pf "note: --symmetry applies to exhaustive mode only@.";
        pf "sampled verification: seed=%d domains=%d@." seed d;
        Engine.Parallel.verify_sampled ~seed ~trials ~domains:d inst
      | None when merged ->
        (* The sharded enumerator covers all nodes, so the restricted
           universe keeps the sequential path here. *)
        Verify.exhaustive ?universe ?symmetry:group ~splice:(not no_splice)
          inst
      | None ->
        pf "exhaustive verification: domains=%d@." d;
        Engine.Parallel.verify_exhaustive ~domains:d ?symmetry:group
          ~splice:(not no_splice) inst
    in
    pf "%a@." Verify.pp_report report;
    if report.Verify.solver_calls < report.Verify.fault_sets_checked then
      pf "orbit reduction: %d solver calls covered %d fault sets (%.1fx \
          fewer)@."
        report.Verify.solver_calls report.Verify.fault_sets_checked
        (float_of_int report.Verify.fault_sets_checked
        /. float_of_int (max 1 report.Verify.solver_calls));
    let crosscheck_failed =
      match group with
      | Some g when crosscheck && sample = None ->
        let cap = 1_000_000 in
        let full = Verify.exhaustive ~max_failures:cap ?universe inst in
        let orb =
          Verify.exhaustive ~max_failures:cap ?universe ~symmetry:g inst
        in
        let full_sets =
          List.sort compare
            (List.map
               (fun f -> List.sort compare f.Verify.faults)
               full.Verify.failures)
        in
        let orb_sets = Verify.expanded_failure_sets ~symmetry:g orb in
        let agree =
          Verify.is_k_gd full = Verify.is_k_gd orb
          && full.Verify.fault_sets_checked = orb.Verify.fault_sets_checked
          && full_sets = orb_sets
        in
        pf "crosscheck vs full enumeration: %s (full %d sets / orbit %d \
            solver calls)@."
          (if agree then "PASS" else "FAIL")
          full.Verify.solver_calls orb.Verify.solver_calls;
        not agree
      | _ -> false
    in
    (* Splice crosscheck: the prefix-tree splice-first enumeration must
       report exactly what from-scratch solving reports — positives are
       revalidated splices, negatives always come from a full solve. *)
    let splice_crosscheck_failed =
      if crosscheck && sample = None then begin
        let module Metrics = Gdpn_obs.Metrics in
        let splices = Metrics.counter "verify.splices" in
        let before = Metrics.value splices in
        let cap = 1_000_000 in
        let spliced =
          Verify.exhaustive ~max_failures:cap ?universe ?symmetry:group
            ~splice:true inst
        in
        let n_splices = Metrics.value splices - before in
        let scratch =
          Verify.exhaustive ~max_failures:cap ?universe ?symmetry:group
            ~splice:false inst
        in
        let agree = spliced = scratch in
        pf "crosscheck splice vs from-scratch: %s (%d sets, %d spliced)@."
          (if agree then "PASS" else "FAIL")
          spliced.Verify.fault_sets_checked n_splices;
        not agree
      end
      else false
    in
    (* Kernel-equivalence crosscheck: independent of --symmetry, the
       word-parallel kernel and the retained reference backtracker must
       produce identical reports from identical expansion counts.  Splice
       is off on both sides so every set exercises the solvers. *)
    let kernel_crosscheck_failed =
      if crosscheck && sample = None then begin
        let module Metrics = Gdpn_obs.Metrics in
        let delta name f =
          let c = Metrics.counter name in
          let before = Metrics.value c in
          let r = f () in
          (r, Metrics.value c - before)
        in
        let cap = 1_000_000 in
        let kernel, ek =
          delta "hamilton.expansions" (fun () ->
              Verify.exhaustive ~max_failures:cap ?universe ~splice:false
                inst)
        in
        let reference, er =
          delta "hamilton.ref_expansions" (fun () ->
              Verify.exhaustive ~max_failures:cap ?universe ~splice:false
                ~solve:(fun ~faults ->
                  Reconfig.solve ~reference:true inst ~faults)
                inst)
        in
        let agree = kernel = reference && ek = er in
        pf "crosscheck kernel vs reference: %s (%d solver calls, \
            expansions %d vs %d)@."
          (if agree then "PASS" else "FAIL")
          kernel.Verify.solver_calls ek er;
        not agree
      end
      else begin
        if crosscheck then pf "note: --crosscheck requires exhaustive mode@.";
        false
      end
    in
    (* Generalized-model crosscheck: the node instantiation of the
       Fault_model machinery must reproduce the legacy node-only verifier
       byte for byte, sequentially and under the work-stealing shards. *)
    let model_crosscheck_failed =
      if crosscheck && sample = None then begin
        let cap = 1_000_000 in
        let legacy =
          Verify.exhaustive ~max_failures:cap ?universe ?symmetry:group
            ~splice:(not no_splice) inst
        in
        let gen =
          Verify.exhaustive_model ~max_failures:cap ?universe ?symmetry:group
            ~splice:(not no_splice) model
        in
        let gen_par =
          (* The restricted (merged) universe keeps the sequential path,
             as in the main enumeration above. *)
          if merged then gen
          else
            Engine.Parallel.verify_exhaustive_model ~max_failures:cap
              ~domains:d ?symmetry:group ~splice:(not no_splice) model
        in
        let agree = legacy = gen && legacy = gen_par in
        pf "crosscheck generalized-node vs legacy: %s (%d sets, %d solver \
            calls)@."
          (if agree then "PASS" else "FAIL")
          legacy.Verify.fault_sets_checked legacy.Verify.solver_calls;
        not agree
      end
      else false
    in
    if
      crosscheck_failed || splice_crosscheck_failed
      || kernel_crosscheck_failed || model_crosscheck_failed
    then 3
    else if Verify.is_k_gd report then 0
    else 1
  in
  Cmd.v
    (Cmd.info "verify" ~doc:"Verify k-graceful-degradability.")
    Term.(const run $ n_arg $ k_arg $ merged_arg $ model_arg $ fault_set_arg
          $ sample_arg $ domains_arg $ seed_arg $ symmetry_arg
          $ crosscheck_arg $ no_splice_arg $ procs_arg $ checkpoint_arg
          $ resume_arg $ trace_out_arg)

(* -------------------- verify-worker -------------------- *)

(* The child half of `gdp verify --procs`: rebuild the identical task
   from the spec flags (the unit decomposition is canonical, so matching
   specs guarantee matching unit arrays) and serve Codec-framed unit
   assignments on stdin/stdout.  stdout carries protocol frames only —
   this command never prints. *)
let verify_worker_cmd =
  let symmetry_arg =
    Arg.(value & flag & info [ "symmetry" ]
           ~doc:"Orbit-reduced decomposition (must match the coordinator).")
  in
  let no_splice_arg =
    Arg.(value & flag & info [ "no-splice" ]
           ~doc:"Solve every fault set from scratch.")
  in
  let max_failures_arg =
    Arg.(value & opt int 5 & info [ "max-failures" ] ~docv:"M"
           ~doc:"Per-unit recorded-entry cap (must match the coordinator).")
  in
  let run n k model_name symmetry no_splice max_failures =
    let inst = Family.build ~n ~k in
    match model_of_name inst model_name with
    | Error e ->
      prerr_endline ("verify-worker: " ^ e);
      2
    | Ok model ->
      let group = if symmetry then Some (Instance.symmetry inst) else None in
      let task =
        if Fault_model.is_node model then
          Engine.Parallel.Task.exhaustive ?symmetry:group
            ~splice:(not no_splice) inst
        else
          Engine.Parallel.Task.exhaustive_model ?symmetry:group
            ~splice:(not no_splice) model
      in
      Gdpn_engine.Mp.worker_main ~max_failures task;
      0
  in
  Cmd.v
    (Cmd.info "verify-worker"
       ~doc:"(internal) Serve verification work units over stdin/stdout; \
             spawned by $(b,gdp verify --procs).")
    Term.(const run $ n_arg $ k_arg $ model_arg $ symmetry_arg
          $ no_splice_arg $ max_failures_arg)

(* -------------------- table -------------------- *)

let table_cmd =
  let max_n_arg =
    Arg.(value & opt int 14 & info [ "max-n" ] ~docv:"N" ~doc:"Largest n.")
  in
  let run k max_n =
    pf "%-4s %-9s %-9s %-30s@." "n" "max-deg" "optimal" "construction";
    for n = 1 to max_n do
      match Family.build ~n ~k with
      | inst ->
        pf "%-4d %-9d %-9b %-30s@." n
          (Instance.max_processor_degree inst)
          (Bounds.is_degree_optimal inst)
          inst.Instance.name
      | exception Family.Unsupported msg -> pf "%-4d %s@." n msg
    done;
    0
  in
  Cmd.v
    (Cmd.info "table" ~doc:"Print the degree table for a given k.")
    Term.(const run $ k_arg $ max_n_arg)

(* -------------------- compare -------------------- *)

let compare_cmd =
  let sample_arg =
    Arg.(value & opt (some int) None & info [ "sample" ] ~docv:"TRIALS"
           ~doc:"Sampled evaluation (default: exhaustive).")
  in
  let run n k sample seed =
    let sample = Option.map (fun t -> (t, seed)) sample in
    List.iter (fun r -> pf "%a@." Compare.pp_row r)
      (Compare.table ?sample ~n ~k ());
    0
  in
  Cmd.v
    (Cmd.info "compare" ~doc:"Compare against prior-work baselines (E12).")
    Term.(const run $ n_arg $ k_arg $ sample_arg $ seed_arg)

(* -------------------- simulate -------------------- *)

let simulate_cmd =
  let stages_arg =
    Arg.(value & opt string "video" & info [ "stages" ] ~docv:"CHAIN"
           ~doc:"Workload: a preset (video, ct, firbankN) or a chain like sub2|fir5|rle.")
  in
  let rounds_arg =
    Arg.(value & opt int 100 & info [ "rounds" ] ~docv:"R" ~doc:"Rounds.")
  in
  let count_arg =
    Arg.(value & opt int 0 & info [ "inject" ] ~docv:"F"
           ~doc:"Number of random faults to inject during the run.")
  in
  let run n k stages rounds inject seed model_name trace_out =
    with_trace trace_out @@ fun () ->
    let inst = Family.build ~n ~k in
    match model_of_name inst model_name with
    | Error e ->
      pf "error: %s@." e;
      2
    | Ok model ->
      let stage_chain =
        match Faultsim.Workload.parse stages with
        | Ok chain -> chain
        | Error e -> failwith e
      in
      (* The node model keeps the legacy machine (node-indexed faults);
         other models run the machine over the generalized universe. *)
      let generalized = not (Fault_model.is_node model) in
      let machine =
        if generalized then Faultsim.Machine.create ~model inst
        else Faultsim.Machine.create inst
      in
      if generalized then
        pf "fault model: %s (universe %d elements)@." (Fault_model.name model)
          (Fault_model.size model);
      let rng = Faultsim.Stream.Prng.create seed in
      let schedule =
        if inject = 0 then []
        else if generalized then
          Faultsim.Injector.random_model ~rng model ~count:inject ~rounds
        else Faultsim.Injector.random ~rng inst ~count:inject ~rounds
      in
      let metrics =
        Faultsim.Runner.run ~machine ~stages:stage_chain
          ~source:(Faultsim.Stream.Sine_mixture [ (0.013, 1.0); (0.05, 0.3) ])
          ~frame_length:256 ~rounds ~schedule ~seed ()
      in
      (if generalized && Faultsim.Machine.fault_count machine > 0 then
         pf "injected faults: %s@."
           (Fault_model.describe model (Faultsim.Machine.faults machine)));
      pf "%a@." Faultsim.Runner.pp_metrics metrics;
      if metrics.Faultsim.Runner.pipeline_lost then 1 else 0
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Stream a workload under fault injection.")
    Term.(const run $ n_arg $ k_arg $ stages_arg $ rounds_arg $ count_arg
          $ seed_arg $ model_arg $ trace_out_arg)

(* -------------------- chaos -------------------- *)

let chaos_cmd =
  let profile_arg =
    Arg.(value & opt string "chaos" & info [ "profile" ] ~docv:"PROFILE"
           ~doc:"Fault-rate profile: $(b,mild), $(b,aggressive) or \
                 $(b,chaos) (default).")
  in
  let count_arg =
    Arg.(value & opt int 1 & info [ "count" ] ~docv:"C"
           ~doc:"Run $(docv) consecutive seeds starting at --seed.")
  in
  let years_arg =
    Arg.(value & opt int 1 & info [ "years" ] ~docv:"Y"
           ~doc:"Virtual years of operation per run.")
  in
  let ops_arg =
    Arg.(value & opt int 200 & info [ "ops-per-day" ] ~docv:"OPS"
           ~doc:"Virtual operations per virtual day.")
  in
  let require_kinds_arg =
    Arg.(value & opt (some string) None & info [ "require-kinds" ]
           ~docv:"KINDS"
           ~doc:"Comma-separated fault kinds that must all be covered \
                 across the runs (node, link, colored, neighbor, burst, \
                 follow-up); exit 4 if any is missing.")
  in
  let events_arg =
    Arg.(value & flag & info [ "events" ]
           ~doc:"Print the full event trace of every run (violating runs \
                 always print their prefix).")
  in
  let run n k merged profile_name seed count years ops_per_day require events
      trace_out =
    with_trace trace_out @@ fun () ->
    match Faultsim.Scenario.profile_of_name profile_name with
    | None ->
      pf "error: unknown profile %S (expected mild, aggressive or chaos)@."
        profile_name;
      2
    | Some profile -> (
      let required =
        match require with
        | None -> Ok []
        | Some s ->
          let names =
            List.filter (fun x -> x <> "") (String.split_on_char ',' s)
          in
          List.fold_left
            (fun acc name ->
              match (acc, Faultsim.Scenario.kind_of_name name) with
              | Error e, _ -> Error e
              | Ok ks, Some kind -> Ok (kind :: ks)
              | Ok _, None -> Error name)
            (Ok []) names
      in
      match required with
      | Error name ->
        pf "error: unknown fault kind %S@." name;
        2
      | Ok required ->
        let config =
          { Faultsim.Scenario.default_config with years; ops_per_day }
        in
        let inst = build_instance n k merged in
        let violated = ref false in
        let covered = ref [] in
        for i = 0 to count - 1 do
          let r =
            Faultsim.Scenario.run ~config ~profile ~seed:(seed + i) inst
          in
          pf "%a@." Faultsim.Scenario.pp_run r;
          if events && r.Faultsim.Scenario.violation = None then
            List.iter
              (fun e -> pf "  %a@." Faultsim.Scenario.pp_entry e)
              r.Faultsim.Scenario.events;
          if r.Faultsim.Scenario.violation <> None then violated := true;
          List.iter
            (fun kind ->
              if not (List.mem kind !covered) then covered := kind :: !covered)
            r.Faultsim.Scenario.kinds_covered
        done;
        let missing =
          List.filter (fun kind -> not (List.mem kind !covered)) required
        in
        if !violated then 1
        else if missing <> [] then begin
          pf "missing required fault kinds: %s@."
            (String.concat ","
               (List.map Faultsim.Scenario.kind_name missing));
          4
        end
        else 0)
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:"Deterministic chaos run: a seeded multi-year fault storm with \
             shadow-state invariant checks after every event; any failing \
             seed replays byte-identically.")
    Term.(const run $ n_arg $ k_arg $ merged_arg $ profile_arg $ seed_arg
          $ count_arg $ years_arg $ ops_arg $ require_kinds_arg $ events_arg
          $ trace_out_arg)

(* -------------------- figure -------------------- *)

let figure_cmd =
  let name_arg =
    Arg.(value & pos 0 (some string) None & info [] ~docv:"FIGURE"
           ~doc:"Figure name (fig2..fig15); omit to list all.")
  in
  let run name out =
    match name with
    | None ->
      List.iter
        (fun e -> pf "%-8s %s@." e.Figures.id e.Figures.description)
        Figures.all;
      0
    | Some id -> (
      match Figures.find id with
      | None ->
        pf "unknown figure %s@." id;
        1
      | Some e ->
        let inst = e.Figures.build () in
        let path = Option.value out ~default:(id ^ ".dot") in
        Gdpn_graph.Dot.save ~path (Instance.to_dot inst);
        pf "%s (%s) -> %s@." id e.Figures.description path;
        0)
  in
  Cmd.v
    (Cmd.info "figure" ~doc:"Regenerate a paper figure as DOT.")
    Term.(const run $ name_arg $ out_arg)

(* -------------------- census -------------------- *)

let census_cmd =
  let run n k =
    match Impossibility.standard_census ~n ~k with
    | r ->
      pf "degree-(k+2) standard space for (n,k) = (%d,%d):@." n k;
      pf "  labeled degree-profile graphs: %d@." r.Impossibility.graphs_examined;
      pf "  (graph, assignment) candidates: %d@."
        r.Impossibility.assignments_examined;
      pf "  k-gracefully-degradable solutions: %d@."
        r.Impossibility.solutions_found;
      0
    | exception Invalid_argument msg ->
      pf "%s@." msg;
      2
  in
  Cmd.v
    (Cmd.info "census"
       ~doc:"Exhaust the degree-(k+2) standard solution space (L3.14 E8).")
    Term.(const run $ n_arg $ k_arg)

(* -------------------- certify -------------------- *)

let certify_cmd =
  let file_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE"
           ~doc:"Destination certificate file.")
  in
  let stream_arg =
    Arg.(value & flag & info [ "stream" ]
           ~doc:"Stream a compact binary (v4) certificate record by record \
                 as each fault set is solved, instead of accumulating the \
                 whole text in memory — O(1) memory for arbitrarily large \
                 fault spaces.  `gdp check-cert` validates both formats.")
  in
  let run n k stream file =
    let inst = Family.build ~n ~k in
    pf "%a@." Instance.pp inst;
    (* Through the engine: size-s witnesses splice from their cached
       size-(s-1) predecessors instead of re-running the solver. *)
    let engine = Engine.create inst in
    if stream then begin
      let oc = open_out_bin file in
      match Engine.certify_to engine oc with
      | () ->
        let size = out_channel_length oc in
        close_out oc;
        pf "wrote %s (%d bytes, streamed v4); re-check with `gdp \
            check-cert`@."
          file size;
        0
      | exception Failure msg ->
        close_out oc;
        (try Sys.remove file with Sys_error _ -> ());
        pf "cannot certify: %s@." msg;
        1
    end
    else
      match Engine.certify engine with
      | cert ->
        let oc = open_out file in
        output_string oc cert;
        close_out oc;
        pf "wrote %s (%d bytes); re-check with `gdp check-cert`@." file
          (String.length cert);
        0
      | exception Failure msg ->
        pf "cannot certify: %s@." msg;
        1
  in
  Cmd.v
    (Cmd.info "certify"
       ~doc:"Emit a witness certificate of k-graceful-degradability.")
    Term.(const run $ n_arg $ k_arg $ stream_arg $ file_arg)

let check_cert_cmd =
  let file_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE"
           ~doc:"Certificate file produced by `gdp certify`.")
  in
  let run n k file =
    let inst = Family.build ~n ~k in
    let ic = open_in file in
    let text = really_input_string ic (in_channel_length ic) in
    close_in ic;
    match Certify.check inst text with
    | Ok count ->
      pf "certificate valid: %d fault sets witnessed@." count;
      0
    | Error e ->
      pf "certificate INVALID: %s@." e;
      1
  in
  Cmd.v
    (Cmd.info "check-cert"
       ~doc:"Validate a witness certificate (no solver involved).")
    Term.(const run $ n_arg $ k_arg $ file_arg)

(* -------------------- console -------------------- *)

let console_cmd =
  let run n k =
    let inst = Family.build ~n ~k in
    let console = Faultsim.Console.create inst in
    pf "gdpn console — 'help' for commands, 'quit' to leave@.";
    let rec loop () =
      print_string "> ";
      match read_line () with
      | exception End_of_file -> 0
      | line -> (
        match Faultsim.Console.eval console line with
        | `Quit -> 0
        | `Reply text ->
          if text <> "" then pf "%s@." text;
          loop ())
    in
    loop ()
  in
  Cmd.v
    (Cmd.info "console" ~doc:"Interactive machine controller on stdin.")
    Term.(const run $ n_arg $ k_arg)

(* -------------------- plan -------------------- *)

let plan_cmd =
  let prob_arg =
    Arg.(required & opt (some float) None & info [ "p" ] ~docv:"PROB"
           ~doc:"Per-node failure probability over the mission time.")
  in
  let target_arg =
    Arg.(value & opt float 0.99 & info [ "target" ] ~docv:"P"
           ~doc:"Required survival probability (Wilson lower bound).")
  in
  let trials_arg =
    Arg.(value & opt int 400 & info [ "trials" ] ~docv:"T"
           ~doc:"Monte Carlo trials per candidate k.")
  in
  let run n prob target trials seed =
    let rng = Random.State.make [| seed |] in
    pf "per-node failure probability %.4f, target survival %.4f@." prob target;
    (match
       Planner.recommend_k ~rng ~trials ~n ~node_failure_prob:prob ~target ()
     with
    | Some (k, est) ->
      pf "recommended k = %d: %a@." k Planner.pp_estimate est;
      pf "(guarantee-only bound at that k: %.4f)@."
        (Planner.guarantee_only_bound ~n ~k ~node_failure_prob:prob)
    | None -> pf "no k <= 8 reaches the target; lower p or the target@.");
    0
  in
  Cmd.v
    (Cmd.info "plan"
       ~doc:"Recommend the smallest k for a target survival probability.")
    Term.(const run $ n_arg $ prob_arg $ target_arg $ trials_arg $ seed_arg)

(* -------------------- bounds -------------------- *)

let bounds_cmd =
  let max_n_arg =
    Arg.(value & opt int 12 & info [ "max-n" ] ~docv:"N" ~doc:"Largest n.")
  in
  let run k max_n =
    pf "%-4s %-11s %s@." "n" "lower-bnd" "why";
    for n = 1 to max_n do
      let reasons =
        List.filter_map
          (fun (cond, why) -> if cond then Some why else None)
          [
            (true, "k+2 (Cor 3.2)");
            (Bounds.parity_bound_applies ~n ~k, "k+3: n even, k odd (L3.5)");
            (n = 2, "k+3: n = 2 (Cor 3.10)");
            (n = 3 && k > 1, "k+3: n = 3 (L3.11)");
            (n = 5 && k = 2, "k+3: (5,2) (L3.14)");
          ]
      in
      pf "%-4d %-11d %s@." n
        (Bounds.degree_lower_bound ~n ~k)
        (String.concat "; " reasons)
    done;
    0
  in
  Cmd.v
    (Cmd.info "bounds"
       ~doc:"Print the proven degree lower bounds and which lemma fires.")
    Term.(const run $ k_arg $ max_n_arg)

(* -------------------- draw -------------------- *)

let draw_cmd =
  let run n k faults =
    let inst = Family.build ~n ~k in
    let pipeline =
      match Reconfig.solve_list inst ~faults with
      | Reconfig.Pipeline p -> Some p
      | Reconfig.No_pipeline | Reconfig.Gave_up -> None
    in
    pf "%s@." (Render.summary inst);
    (match inst.Instance.strategy with
    | Instance.Circulant_layout _ ->
      pf "%s@." (Render.ring ~faults ?pipeline inst)
    | _ -> pf "%s@." (Render.adjacency inst));
    (match pipeline with
    | Some p -> pf "pipeline: %s@." (Render.embedding inst p)
    | None -> pf "no pipeline for this fault set@.");
    0
  in
  Cmd.v
    (Cmd.info "draw" ~doc:"ASCII rendering of an instance and embedding.")
    Term.(const run $ n_arg $ k_arg $ faults_arg)

(* -------------------- save / check -------------------- *)

let save_cmd =
  let file_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE"
           ~doc:"Destination .gdpn file.")
  in
  let run n k merged file =
    let inst = build_instance n k merged in
    Serial.save ~path:file inst;
    pf "wrote %s (%a)@." file Instance.pp inst;
    0
  in
  Cmd.v
    (Cmd.info "save" ~doc:"Serialize a construction to a .gdpn file.")
    Term.(const run $ n_arg $ k_arg $ merged_arg $ file_arg)

let check_cmd =
  let file_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE"
           ~doc:"A .gdpn instance file (see Serial's format).")
  in
  let sample_arg =
    Arg.(value & opt (some int) None & info [ "sample" ] ~docv:"TRIALS"
           ~doc:"Random sampling instead of exhaustive enumeration.")
  in
  let run file sample seed =
    match Serial.load ~path:file with
    | Error e ->
      pf "error: %s@." e;
      2
    | Ok inst ->
      pf "%a@." Instance.pp inst;
      pf "standard: %b   node-optimal: %b@." (Instance.is_standard inst)
        (Instance.is_node_optimal inst);
      let report =
        match sample with
        | Some trials ->
          Verify.sampled ~rng:(Random.State.make [| seed |]) ~trials inst
        | None -> Verify.exhaustive inst
      in
      pf "%a@." Verify.pp_report report;
      if Verify.is_k_gd report then 0 else 1
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:"Load a user-supplied instance file and verify it.")
    Term.(const run $ file_arg $ sample_arg $ seed_arg)

(* -------------------- survival -------------------- *)

let survival_cmd =
  let trials_arg =
    Arg.(value & opt int 200 & info [ "trials" ] ~docv:"T" ~doc:"Trials.")
  in
  let run n k trials seed =
    let rng () = Random.State.make [| seed |] in
    pf "%-14s %s@." "scheme" "faults absorbed before stream loss";
    let inst = Family.build ~n ~k in
    pf "%-14s %a@." "gdpn"
      Gdpn_baselines.Survival.pp_stats
      (Gdpn_baselines.Survival.instance_lifetime ~rng:(rng ()) ~trials inst);
    List.iter
      (fun scheme ->
        pf "%-14s %a@." scheme.Gdpn_baselines.Scheme.name
          Gdpn_baselines.Survival.pp_stats
          (Gdpn_baselines.Survival.scheme_lifetime ~rng:(rng ()) ~trials
             scheme))
      [ Hayes.scheme ~n ~k; Spares.scheme ~n ~k;
        Gdpn_baselines.Rosenberg.scheme ~n ~k ];
    0
  in
  Cmd.v
    (Cmd.info "survival"
       ~doc:"Beyond-spec lifetime: random faults until stream loss (E15).")
    Term.(const run $ n_arg $ k_arg $ trials_arg $ seed_arg)

(* -------------------- links -------------------- *)

let links_cmd =
  let run n k =
    let inst = Family.build ~n ~k in
    pf "%a@." Instance.pp inst;
    pf "surveying every mixed node/link fault set of size <= %d ...@." k;
    let s = Link_faults.survey_exhaustive inst in
    pf "%a@." Link_faults.pp_survey s;
    if s.Link_faults.lost = 0 then 0 else 1
  in
  Cmd.v
    (Cmd.info "links"
       ~doc:"Survey graceful vs degraded tolerance of link faults (E13).")
    Term.(const run $ n_arg $ k_arg)

(* -------------------- tolerance -------------------- *)

let tolerance_cmd =
  let run n k merged =
    let inst = build_instance n k merged in
    pf "%a@." Instance.pp inst;
    let t = Verify.tolerance inst in
    pf "measured structural fault tolerance: %d (designed: %d)@." t k;
    (match Verify.breaking_fault_set inst with
    | Some witness ->
      pf "smallest breaking fault set: {%s}@."
        (String.concat "," (List.map string_of_int witness))
    | None -> pf "no breaking fault set up to size %d@." (k + 1));
    if t = k then 0 else 1
  in
  Cmd.v
    (Cmd.info "tolerance"
       ~doc:"Measure the exact fault tolerance by exhaustive search.")
    Term.(const run $ n_arg $ k_arg $ merged_arg)

(* -------------------- trace -------------------- *)

let trace_cmd =
  let rounds_arg =
    Arg.(value & opt int 50 & info [ "rounds" ] ~docv:"R" ~doc:"Rounds.")
  in
  let count_arg =
    Arg.(value & opt int 2 & info [ "inject" ] ~docv:"F"
           ~doc:"Random faults to inject.")
  in
  let run n k rounds inject seed =
    let inst = Family.build ~n ~k in
    let machine = Faultsim.Machine.create inst in
    let rng = Faultsim.Stream.Prng.create seed in
    let schedule = Faultsim.Injector.random ~rng inst ~count:inject ~rounds in
    let trace = Faultsim.Trace.recorder () in
    let metrics =
      Faultsim.Runner.run ~machine
        ~stages:(Faultsim.Stage.video_codec ())
        ~source:(Faultsim.Stream.Sine_mixture [ (0.013, 1.0) ])
        ~frame_length:256 ~rounds ~schedule ~trace ()
    in
    print_endline (Faultsim.Trace.to_csv trace);
    pf "# %a@." Faultsim.Runner.pp_metrics metrics;
    0
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Run a traced simulation and print the event log as CSV.")
    Term.(const run $ n_arg $ k_arg $ rounds_arg $ count_arg $ seed_arg)

(* -------------------- stats -------------------- *)

let stats_cmd =
  let rounds_arg =
    Arg.(value & opt int 50 & info [ "rounds" ] ~docv:"R"
           ~doc:"Simulation rounds in the workload.")
  in
  let inject_arg =
    Arg.(value & opt int 2 & info [ "inject" ] ~docv:"F"
           ~doc:"Random faults injected during the simulation.")
  in
  let json_arg =
    Arg.(value & flag & info [ "json" ]
           ~doc:"Emit the snapshot as one JSON object instead of a table.")
  in
  let store_arg =
    Arg.(value & opt (some string) None & info [ "store" ] ~docv:"FILE"
           ~doc:"Attach the precompiled plan store at $(docv) as the \
                 engine's L2 tier before running the workload, so the \
                 engine.store_* counters are exercised.")
  in
  let run n k rounds inject seed json store trace_out =
    with_trace trace_out @@ fun () ->
    let inst = Family.build ~n ~k in
    (* A representative workload that exercises every instrumented layer:
       an exhaustive verification (solver + verify counters), then a
       fault-injected simulation (engine cache + machine + runner). *)
    let engine = Engine.create inst in
    (match store with
    | None -> ()
    | Some path -> (
      match Engine.attach_store engine ~path with
      | Ok () -> ()
      | Error e -> pf "warning: plan store not attached: %s@." e));
    let report = Engine.verify_exhaustive engine in
    let machine = Faultsim.Machine.create ~engine inst in
    let rng = Faultsim.Stream.Prng.create seed in
    let schedule =
      if inject = 0 then []
      else Faultsim.Injector.random ~rng inst ~count:inject ~rounds
    in
    let metrics =
      Faultsim.Runner.run ~machine
        ~stages:(Faultsim.Stage.video_codec ())
        ~source:(Faultsim.Stream.Sine_mixture [ (0.013, 1.0) ])
        ~frame_length:256 ~rounds ~schedule ~seed ()
    in
    let snap = Metrics.snapshot () in
    if json then print_endline (Metrics.snapshot_to_json snap)
    else begin
      pf "%a@." Instance.pp inst;
      pf "workload: verify (%a), simulate (%a)@." Verify.pp_report report
        Faultsim.Runner.pp_metrics metrics;
      let occupied =
        Array.fold_left (fun acc (n, _) -> acc + n) 0
          (Engine.cache_shard_stats engine)
      in
      pf "plan cache: %d/%d entries (%d total incl. models) across %d \
          shards, %d evicted@."
        occupied (Engine.cache_capacity engine) (Engine.cache_total engine)
        (Array.length (Engine.cache_shard_stats engine))
        (Engine.cache_evictions engine);
      (match Engine.plan_store engine with
      | None -> pf "plan store: none attached@."
      | Some s ->
        let module Plan_store = Gdpn_engine.Plan_store in
        pf "plan store: %d records covering %d fault sets%s, %d bytes \
            mmap'd@."
          (Plan_store.records s) (Plan_store.total_sets s)
          (if Plan_store.orbit_compressed s then " (orbit-compressed)"
           else "")
          (Plan_store.mmap_bytes s));
      pf "@.%a@." Metrics.pp_snapshot snap
    end;
    0
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:"Run a representative workload and dump the metrics registry.")
    Term.(const run $ n_arg $ k_arg $ rounds_arg $ inject_arg $ seed_arg
          $ json_arg $ store_arg $ trace_out_arg)

(* -------------------- compile-plans -------------------- *)

(* Offline plan-warehouse compiler: enumerate the fault universe (one
   representative per automorphism orbit when the node model has a
   nontrivial symmetry group), solve every representative with the plain
   deterministic solver — no cache, no splice, so an interrupted and
   resumed compile still emits a byte-identical store — and write the
   mmap-ready Plan_store file.  Work is journaled per unit in the
   Checkpoint discipline, so a SIGKILL mid-compile loses at most the
   units in flight. *)
let compile_plans_cmd =
  let module Auto = Gdpn_graph.Auto in
  let module Bitset = Gdpn_graph.Bitset in
  let module Combinat = Gdpn_graph.Combinat in
  let module Plan_store = Gdpn_engine.Plan_store in
  let module Journal = Gdpn_engine.Plan_store.Journal in
  let unit_size = 256 in
  let run n k model_name out max_size flat domains budget ckpt_path
      resume_path =
    let inst = build_instance n k false in
    match model_of_name inst model_name with
    | Error e ->
      pf "error: %s@." e;
      2
    | Ok _ when ckpt_path <> None && resume_path <> None ->
      pf "error: --resume already appends to its own file; give one of \
          --checkpoint/--resume@.";
      2
    | Ok model ->
      let is_node = Fault_model.is_node model in
      let usize = Fault_model.size model in
      let order = Instance.order inst in
      let max_size =
        match max_size with
        | Some s -> Stdlib.min s usize
        | None -> Fault_model.max_faults model
      in
      pf "%a@." Instance.pp inst;
      if not is_node then
        pf "fault model: %s (universe %d elements)@." (Fault_model.name model)
          usize;
      let group =
        (* Orbit compression covers only the node model: plan transport
           needs node permutations, which the induced action on a
           generalized universe has already forgotten. *)
        if is_node && not flat then begin
          let g = Instance.symmetry inst in
          if Auto.is_trivial g then None
          else begin
            pf "symmetry: group order %d — storing one plan per orbit@."
              (Auto.order g);
            Some g
          end
        end
        else None
      in
      let items =
        match group with
        | Some g -> Auto.fault_orbits g ~max_size
        | None ->
          let acc = ref [] in
          Combinat.iter_subsets_up_to usize max_size (fun buf len ->
              acc := { Auto.set = Array.sub buf 0 len; size = 1 } :: !acc);
          Array.of_list (List.rev !acc)
      in
      let nitems = Array.length items in
      let nunits = Stdlib.max 1 ((nitems + unit_size - 1) / unit_size) in
      let digest = Certify.digest inst in
      let header =
        {
          Journal.j_digest = digest;
          j_model = Fault_model.id model;
          j_orbit = group <> None;
          j_usize = usize;
          j_order = order;
          j_max_size = max_size;
          j_nunits = nunits;
        }
      in
      let resume_state =
        match resume_path with
        | None -> Ok None
        | Some path -> (
          match Journal.load ~path with
          | Error e -> Error e
          | Ok l -> (
            match Journal.check_header ~expected:header l.Journal.l_header with
            | Error e -> Error e
            | Ok () -> Ok (Some l)))
      in
      (match resume_state with
      | Error e ->
        pf "error: cannot resume: %s@." e;
        2
      | Ok loaded ->
        let results = Array.make nunits None in
        Option.iter
          (fun l ->
            Hashtbl.iter
              (fun u outs ->
                if u >= 0 && u < nunits then results.(u) <- Some outs)
              l.Journal.l_units;
            pf "resume: %d/%d units already journaled%s%s@."
              (Hashtbl.length l.Journal.l_units)
              nunits
              (if l.Journal.l_duplicates > 0 then
                 Printf.sprintf ", %d duplicate records dropped"
                   l.Journal.l_duplicates
               else "")
              (if l.Journal.l_torn_bytes > 0 then
                 Printf.sprintf ", %d torn trailing bytes discarded"
                   l.Journal.l_torn_bytes
               else ""))
          loaded;
        let journal =
          match (ckpt_path, resume_path) with
          | Some path, _ -> Some (Journal.create ~path header)
          | None, Some path -> Some (Journal.open_append ~path)
          | None, None -> None
        in
        pf "compiling %d representatives (%d units, %d domains)@." nitems
          nunits domains;
        Fun.protect ~finally:(fun () -> Option.iter Journal.close journal)
        @@ fun () ->
        let next = Atomic.make 0 in
        (* Units are drained off one atomic counter; solves are
           history-free (fresh plain solver per set), so assignment
           order cannot influence any outcome and the assembled store
           is deterministic under any domain count. *)
        let worker () =
          let ctx = Reconfig.make_ctx inst in
          let mask = Bitset.create usize in
          let rec loop () =
            let u = Atomic.fetch_and_add next 1 in
            if u < nunits then begin
              (match results.(u) with
              | Some _ -> ()
              | None ->
                let lo = u * unit_size in
                let hi = Stdlib.min nitems (lo + unit_size) in
                let outcomes =
                  Array.init (hi - lo) (fun i ->
                      Bitset.clear mask;
                      Array.iter (Bitset.add mask)
                        items.(lo + i).Auto.set;
                      Fault_model.solve ~budget ~ctx model ~faults:mask)
                in
                results.(u) <- Some outcomes;
                Option.iter
                  (fun w -> Journal.append w ~unit_id:u outcomes)
                  journal);
              loop ()
            end
          in
          loop ()
        in
        let helpers =
          List.init (Stdlib.max 0 (domains - 1)) (fun _ ->
              Domain.spawn worker)
        in
        worker ();
        List.iter Domain.join helpers;
        let w =
          Plan_store.writer ~digest ~model_id:(Fault_model.id model)
            ~orbit:(group <> None) ~usize ~order ~max_size
        in
        Array.iteri
          (fun u outs ->
            let outs = Option.get outs in
            Array.iteri
              (fun i o ->
                let item = items.((u * unit_size) + i) in
                Plan_store.add w ~set:item.Auto.set ~count:item.Auto.size o)
              outs)
          results;
        Plan_store.write w ~path:out;
        (match ckpt_path with
        | Some p -> pf "journal: %s@." p
        | None -> ());
        if Plan_store.gave_up w > 0 then
          pf "warning: %d representatives hit the solver budget and were \
              left out of the store (they will re-solve at serve time)@."
            (Plan_store.gave_up w);
        (* Self-check: reopen what we just published and audit every
           slot, so a compile never hands the daemon a store it would
           refuse or mis-serve. *)
        (match Plan_store.open_path ~path:out with
        | Error e ->
          pf "error: written store fails to open: %s@." e;
          2
        | Ok store ->
          let r = Plan_store.validate store in
          Plan_store.close store;
          (match r with
          | Error e ->
            pf "error: written store fails validation: %s@." e;
            2
          | Ok records ->
            let total = Plan_store.total_sets store in
            let bytes = Plan_store.mmap_bytes store in
            pf "store: %s — %d records covering %d fault sets (%.1fx \
                compression), %d bytes (%.1f per record)@."
              out records total
              (float_of_int total /. float_of_int (Stdlib.max 1 records))
              bytes
              (float_of_int bytes /. float_of_int (Stdlib.max 1 records));
            0)))
  in
  let out_arg =
    Arg.(required & opt (some string) None
         & info [ "out"; "o" ] ~docv:"FILE"
             ~doc:"Write the plan store to $(docv).")
  in
  let max_size_arg =
    Arg.(value & opt (some int) None
         & info [ "max-size" ] ~docv:"S"
             ~doc:"Largest fault-set size to precompile (default: the \
                   model's fault tolerance).")
  in
  let flat_arg =
    Arg.(value & flag
         & info [ "flat" ]
             ~doc:"Disable orbit compression: one record per fault set \
                   even when the instance has symmetry.")
  in
  let domains_arg =
    Arg.(value & opt int 1
         & info [ "domains" ] ~docv:"D"
             ~doc:"Solve representatives over $(docv) OCaml domains.")
  in
  let budget_arg =
    Arg.(value & opt int 2_000_000
         & info [ "budget" ] ~docv:"B"
             ~doc:"Solver expansion budget per fault set (the engine's \
                   default).")
  in
  let ckpt_arg =
    Arg.(value & opt (some string) None
         & info [ "checkpoint" ] ~docv:"FILE"
             ~doc:"Journal each solved unit to $(docv) so an interrupted \
                   compile can resume.")
  in
  let resume_arg =
    Arg.(value & opt (some string) None
         & info [ "resume" ] ~docv:"FILE"
             ~doc:"Resume from (and keep appending to) the journal at \
                   $(docv); solved units are not re-solved and the final \
                   store is byte-identical to an uninterrupted run's.")
  in
  Cmd.v
    (Cmd.info "compile-plans"
       ~doc:"Precompile the fault universe into an mmap-ready plan store \
             for instant cold-start serving.")
    Term.(const run $ n_arg $ k_arg $ model_arg $ out_arg $ max_size_arg
          $ flat_arg $ domains_arg $ budget_arg $ ckpt_arg $ resume_arg)

(* -------------------- serve / bench-client -------------------- *)

(* The daemon front end lives in Serve_cli, shared with the standalone
   [gdpd] binary. *)
let serve_cmd =
  Cmd.v (Cmd.info "serve" ~doc:Serve_cli.serve_doc) Serve_cli.serve_term

let bench_client_cmd =
  Cmd.v
    (Cmd.info "bench-client" ~doc:Serve_cli.bench_client_doc)
    Serve_cli.bench_client_term

(* -------------------- impossibility -------------------- *)

let impossibility_cmd =
  let run () =
    let r = Impossibility.lemma_3_14 () in
    pf "graphs examined: %d@." r.Impossibility.graphs_examined;
    pf "candidates examined: %d@." r.Impossibility.assignments_examined;
    pf "solutions found: %d (Lemma 3.14 predicts 0)@."
      r.Impossibility.solutions_found;
    if r.Impossibility.solutions_found = 0 then 0 else 1
  in
  Cmd.v
    (Cmd.info "impossibility"
       ~doc:"Machine-check Lemma 3.14 by graph-space exhaustion.")
    Term.(const run $ const ())

let () =
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  let info =
    Cmd.info "gdp" ~version:"1.0.0"
      ~doc:"Gracefully degradable pipeline networks (Cypher & Laing, IPPS'97)."
  in
  exit
    (Cmd.eval'
       (Cmd.group ~default info
          [
            build_cmd; solve_cmd; verify_cmd; verify_worker_cmd; table_cmd;
            compare_cmd;
            simulate_cmd; chaos_cmd; figure_cmd; impossibility_cmd; links_cmd;
            tolerance_cmd; trace_cmd; save_cmd; check_cmd; survival_cmd;
            draw_cmd; bounds_cmd; console_cmd; plan_cmd; certify_cmd;
            check_cert_cmd; census_cmd; stats_cmd; compile_plans_cmd;
            serve_cmd; bench_client_cmd;
          ]))
